#include "policy/load_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "support/assert.hpp"

namespace tlb::policy {

namespace {

[[nodiscard]] double clamp_load(double v) { return v < 0.0 ? 0.0 : v; }

/// Mean squared one-step error of predicting y[t] = y[t-1] over the
/// window — the baseline every other model must beat.
[[nodiscard]] double persistence_mse(std::span<double const> h) {
  if (h.size() < 2) {
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t t = 1; t < h.size(); ++t) {
    double const e = h[t] - h[t - 1];
    sum += e * e;
  }
  return sum / static_cast<double>(h.size() - 1);
}

} // namespace

double PersistenceModel::predict(std::span<double const> history) const {
  return history.empty() ? 0.0 : clamp_load(history.back());
}

EmaModel::EmaModel(double alpha) : alpha_{alpha} {
  TLB_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

double EmaModel::predict(std::span<double const> history) const {
  if (history.empty()) {
    return 0.0;
  }
  double ema = history.front();
  for (std::size_t t = 1; t < history.size(); ++t) {
    ema = alpha_ * history[t] + (1.0 - alpha_) * ema;
  }
  return clamp_load(ema);
}

double LinearTrendModel::predict(std::span<double const> history) const {
  auto const n = history.size();
  if (n < 2) {
    return n == 1 ? clamp_load(history.front()) : 0.0;
  }
  // OLS over t = 0..n-1; predict at t = n. With x equally spaced the
  // normal equations reduce to the closed form below.
  double const nd = static_cast<double>(n);
  double const x_mean = (nd - 1.0) / 2.0;
  double y_mean = 0.0;
  for (double const y : history) {
    y_mean += y;
  }
  y_mean /= nd;
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    double const dx = static_cast<double>(t) - x_mean;
    sxy += dx * (history[t] - y_mean);
    sxx += dx * dx;
  }
  double const slope = sxx > 0.0 ? sxy / sxx : 0.0;
  return clamp_load(y_mean + slope * (nd - x_mean));
}

PeriodicModel::PeriodicModel(int min_cycles) : min_cycles_{min_cycles} {
  TLB_EXPECTS(min_cycles >= 1);
}

std::size_t PeriodicModel::detect_period(
    std::span<double const> history) const {
  auto const n = history.size();
  if (n < 4) {
    return 0;
  }
  double const baseline = persistence_mse(history);
  std::size_t best_period = 0;
  double best_mse = baseline;
  auto const max_period = n / static_cast<std::size_t>(min_cycles_ + 1);
  for (std::size_t p = 2; p <= max_period; ++p) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t t = p; t < n; ++t) {
      double const e = history[t] - history[t - p];
      sum += e * e;
      ++count;
    }
    if (count == 0) {
      continue;
    }
    double const mse = sum / static_cast<double>(count);
    // Strictly better than both the baseline and any shorter period: ties
    // prefer the shortest period (a period-p series also matches 2p).
    if (mse < best_mse) {
      best_mse = mse;
      best_period = p;
    }
  }
  return best_period;
}

double PeriodicModel::predict(std::span<double const> history) const {
  auto const n = history.size();
  if (n == 0) {
    return 0.0;
  }
  auto const period = detect_period(history);
  if (period == 0) {
    return clamp_load(history.back());
  }
  // Seasonal value one period back, corrected by the mean drift across
  // periods so a swing riding a ramp is not systematically lagged.
  double const seasonal = history[n - period];
  double drift = 0.0;
  std::size_t count = 0;
  for (std::size_t t = period; t < n; ++t) {
    drift += history[t] - history[t - period];
    ++count;
  }
  if (count > 0) {
    drift /= static_cast<double>(count);
  }
  return clamp_load(seasonal + drift);
}

std::unique_ptr<LoadModel> make_load_model(std::string_view name) {
  if (name == "persistence") {
    return std::make_unique<PersistenceModel>();
  }
  if (name == "ema") {
    return std::make_unique<EmaModel>();
  }
  if (name == "trend") {
    return std::make_unique<LinearTrendModel>();
  }
  if (name == "periodic") {
    return std::make_unique<PeriodicModel>();
  }
  throw std::invalid_argument("unknown load model: " + std::string{name});
}

std::vector<std::string_view> load_model_names() {
  return {"persistence", "ema", "trend", "periodic"};
}

} // namespace tlb::policy
