#pragma once

/// \file trigger_policy.hpp
/// The decision layer between observation and action: should the LB run
/// after this phase? The repo previously invoked the balancer
/// unconditionally (or on a fixed period); a TriggerPolicy instead sees
/// each phase's measured per-rank loads and decides invoke-or-skip, with
/// outcome feedback (did the LB run, what did it measurably cost) closing
/// the loop. LbManager::invoke_if_beneficial drives one and records every
/// decision — including skips — into the phase timeline.
///
/// Policies (make_policy specs in parentheses):
///   always       ("always")          — invoke every phase (the old behavior)
///   never        ("never")           — never invoke (the no-LB baseline)
///   every-k      ("every-4")         — fixed period k
///   λ-threshold  ("threshold-0.5")   — invoke when forecast λ̂ exceeds λ*
///   cost/benefit ("costbenefit[-<model>]") — invoke only when the
///     accumulated forecast time-saved since the last invocation exceeds
///     the EMA of the measured LB cost (the criterion shape of Boulmier
///     et al., arXiv:2104.01688, on top of the forecast models of
///     arXiv:1909.07168); <model> picks the load model, default
///     "persistence"
///
/// All policies are pure state machines over their inputs: deterministic,
/// no randomness, no clocks — a decision sequence is reproducible from
/// (policy spec, load series) alone, which the 64-rank golden test pins.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "policy/forecaster.hpp"

namespace tlb::policy {

/// One invoke-or-skip decision with the evidence it was based on (the
/// phase timeline records these verbatim).
struct Decision {
  bool invoke = false;
  /// Static-storage human-readable cause ("forecast gain exceeds cost",
  /// "below lambda threshold", ...).
  std::string_view reason;
  /// Forecast next-phase imbalance λ̂ (0 when the policy does not forecast).
  double forecast_imbalance = 0.0;
  /// Trailing forecast-error EMA of the policy's model (0 when n/a).
  double forecast_error = 0.0;
  /// Accumulated forecast time-saved if the LB runs now (seconds of
  /// simulated work; 0 when the policy does not estimate it).
  double predicted_gain = 0.0;
  /// The cost the gain was weighed against (EMA of measured LB cost).
  double predicted_cost = 0.0;
};

class TriggerPolicy {
public:
  TriggerPolicy() = default;
  virtual ~TriggerPolicy() = default;
  TriggerPolicy(TriggerPolicy const&) = delete;
  TriggerPolicy& operator=(TriggerPolicy const&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Decide whether the LB should run now, given the measured per-rank
  /// loads of the phase that just completed. Called exactly once per
  /// phase, in phase order.
  [[nodiscard]] virtual Decision decide(std::uint64_t phase,
                                        std::span<double const> loads) = 0;

  /// Outcome feedback after the decision was acted on: whether the LB
  /// actually ran, its measured cost in (simulated) seconds, and the
  /// projected post-LB per-rank loads (empty when skipped or unknown).
  virtual void record_outcome(bool invoked, double lb_cost_seconds,
                              std::span<double const> loads_after);
};

/// Invoke every phase.
class AlwaysPolicy final : public TriggerPolicy {
public:
  [[nodiscard]] std::string_view name() const override { return "always"; }
  [[nodiscard]] Decision decide(std::uint64_t phase,
                                std::span<double const> loads) override;
};

/// Never invoke.
class NeverPolicy final : public TriggerPolicy {
public:
  [[nodiscard]] std::string_view name() const override { return "never"; }
  [[nodiscard]] Decision decide(std::uint64_t phase,
                                std::span<double const> loads) override;
};

/// Invoke on the first decision and every k-th thereafter.
class EveryKPolicy final : public TriggerPolicy {
public:
  explicit EveryKPolicy(std::uint64_t k);
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint64_t k() const { return k_; }
  [[nodiscard]] Decision decide(std::uint64_t phase,
                                std::span<double const> loads) override;

private:
  std::uint64_t k_;
  std::uint64_t since_last_ = 0; ///< decisions since the last invoke
  bool first_ = true;
  std::string name_;
};

/// Invoke when the forecast imbalance λ̂ exceeds a fixed threshold. Uses a
/// persistence forecaster, so λ̂ equals the measured λ of the completed
/// phase — the classical reactive trigger.
class ThresholdPolicy final : public TriggerPolicy {
public:
  explicit ThresholdPolicy(double lambda_threshold);
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] Decision decide(std::uint64_t phase,
                                std::span<double const> loads) override;
  void record_outcome(bool invoked, double lb_cost_seconds,
                      std::span<double const> loads_after) override;

private:
  double threshold_;
  Forecaster forecaster_;
  std::string name_;
};

/// The cost/benefit trigger: accumulate the forecast per-phase time-saved
/// (max̂ − avĝ, the seconds the slowest rank would shed under perfect
/// balance) across skipped phases, and invoke once that accumulated gain
/// exceeds the EMA of the measured LB invocation cost. Before any cost
/// has been measured the policy invokes on the first imbalanced phase to
/// obtain one. A small λ̂ floor keeps it quiet on balanced phases where
/// the forecast gain is noise.
struct CostBenefitParams {
  /// Forecast model name (make_load_model). Persistence is the default —
  /// the paper's own forecasting premise — and sweeps measurably best
  /// across the scenario library; trend/periodic are opt-in for workloads
  /// known to ramp or cycle.
  std::string model = "persistence";
  /// λ̂ below this never triggers (noise floor). The default is set where
  /// a rebalance bought at λ̂ ≈ floor cannot repay a typical invocation
  /// cost before the workload moves again — low-λ̂ phases (e.g. a seasonal
  /// swing's zero crossings) are left alone.
  double lambda_floor = 0.1;
  /// Weight of the newest measured cost in the cost EMA.
  double cost_ema_alpha = 0.3;
  /// Forecaster history window.
  std::size_t window = 64;
};

class CostBenefitPolicy final : public TriggerPolicy {
public:
  using Params = CostBenefitParams;

  explicit CostBenefitPolicy(Params params = Params{});
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] Decision decide(std::uint64_t phase,
                                std::span<double const> loads) override;
  void record_outcome(bool invoked, double lb_cost_seconds,
                      std::span<double const> loads_after) override;

  /// EMA of measured LB cost (seconds); negative until first measurement.
  [[nodiscard]] double cost_ema() const { return cost_ema_; }
  [[nodiscard]] double accumulated_gain() const { return accumulated_gain_; }
  [[nodiscard]] Forecaster const& forecaster() const { return forecaster_; }

private:
  Params params_;
  Forecaster forecaster_;
  double accumulated_gain_ = 0.0;
  double cost_ema_ = -1.0; ///< sentinel: no cost measured yet
  std::string name_;
};

/// Parse a policy spec: "always", "never", "every-<k>", "threshold-<λ>",
/// "costbenefit", or "costbenefit-<model>". Throws std::invalid_argument
/// on unknown specs.
[[nodiscard]] std::unique_ptr<TriggerPolicy> make_policy(
    std::string_view spec);

/// Representative specs (one per policy family) for sweeps and --help.
[[nodiscard]] std::vector<std::string_view> policy_specs();

} // namespace tlb::policy
