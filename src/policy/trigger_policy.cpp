#include "policy/trigger_policy.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "support/assert.hpp"

namespace tlb::policy {

namespace {

[[nodiscard]] double parse_suffix_double(std::string_view spec,
                                         std::string_view prefix) {
  auto const suffix = spec.substr(prefix.size());
  double value = 0.0;
  auto const [ptr, ec] =
      std::from_chars(suffix.data(), suffix.data() + suffix.size(), value);
  if (ec != std::errc{} || ptr != suffix.data() + suffix.size()) {
    throw std::invalid_argument("bad policy parameter in spec: " +
                                std::string{spec});
  }
  return value;
}

} // namespace

void TriggerPolicy::record_outcome(bool /*invoked*/,
                                   double /*lb_cost_seconds*/,
                                   std::span<double const> /*loads_after*/) {}

// ---------------------------------------------------------------------
// Always / Never
// ---------------------------------------------------------------------

Decision AlwaysPolicy::decide(std::uint64_t /*phase*/,
                              std::span<double const> loads) {
  Decision d;
  d.invoke = true;
  d.reason = "unconditional";
  d.forecast_imbalance = forecast_imbalance(loads);
  return d;
}

Decision NeverPolicy::decide(std::uint64_t /*phase*/,
                             std::span<double const> loads) {
  Decision d;
  d.invoke = false;
  d.reason = "disabled";
  d.forecast_imbalance = forecast_imbalance(loads);
  return d;
}

// ---------------------------------------------------------------------
// Every-k
// ---------------------------------------------------------------------

EveryKPolicy::EveryKPolicy(std::uint64_t k)
    : k_{k}, name_{"every-" + std::to_string(k)} {
  TLB_EXPECTS(k >= 1);
}

Decision EveryKPolicy::decide(std::uint64_t /*phase*/,
                              std::span<double const> loads) {
  Decision d;
  d.forecast_imbalance = forecast_imbalance(loads);
  if (first_ || since_last_ + 1 >= k_) {
    d.invoke = true;
    d.reason = "period elapsed";
    first_ = false;
    since_last_ = 0;
  } else {
    d.reason = "inside period";
    ++since_last_;
  }
  return d;
}

// ---------------------------------------------------------------------
// λ-threshold
// ---------------------------------------------------------------------

ThresholdPolicy::ThresholdPolicy(double lambda_threshold)
    : threshold_{lambda_threshold},
      forecaster_{make_load_model("persistence")},
      name_{"threshold-" + std::to_string(lambda_threshold).substr(0, 4)} {
  TLB_EXPECTS(lambda_threshold >= 0.0);
}

Decision ThresholdPolicy::decide(std::uint64_t /*phase*/,
                                 std::span<double const> loads) {
  forecaster_.observe(loads);
  auto const forecast = forecaster_.predict();
  Decision d;
  d.forecast_imbalance = forecast.imbalance;
  d.forecast_error = forecaster_.error_ema();
  d.invoke = forecast.imbalance > threshold_;
  d.reason = d.invoke ? "lambda above threshold" : "lambda below threshold";
  return d;
}

void ThresholdPolicy::record_outcome(bool /*invoked*/,
                                     double /*lb_cost_seconds*/,
                                     std::span<double const> /*loads_after*/) {
}

// ---------------------------------------------------------------------
// Cost/benefit
// ---------------------------------------------------------------------

CostBenefitPolicy::CostBenefitPolicy(Params params)
    : params_{std::move(params)},
      forecaster_{make_load_model(params_.model), params_.window},
      name_{"costbenefit-" + params_.model} {}

Decision CostBenefitPolicy::decide(std::uint64_t /*phase*/,
                                   std::span<double const> loads) {
  forecaster_.observe(loads);
  auto const forecast = forecaster_.predict();

  Decision d;
  d.forecast_imbalance = forecast.imbalance;
  d.forecast_error = forecaster_.error_ema();
  d.predicted_cost = std::max(cost_ema_, 0.0);

  // Seconds the slowest rank sheds next phase under perfect balance — the
  // per-phase benefit of invoking now, by the persistence principle.
  double const gain_next =
      std::max(0.0, forecast.load_max - forecast.load_avg);

  if (forecast.imbalance < params_.lambda_floor) {
    // Balanced (or noise-level) forecast: nothing to gain. The
    // accumulator is intentionally left alone — a paused drift resumes
    // where it left off.
    d.reason = "forecast balanced";
    d.predicted_gain = accumulated_gain_;
    return d;
  }

  accumulated_gain_ += gain_next;
  d.predicted_gain = accumulated_gain_;

  if (cost_ema_ < 0.0) {
    // No cost measurement yet: invoke once to obtain one (the forecast
    // says there is something to balance, so the phase is not wasted).
    d.invoke = true;
    d.reason = "probing lb cost";
    return d;
  }
  if (accumulated_gain_ > cost_ema_) {
    d.invoke = true;
    d.reason = "gain exceeds cost";
    return d;
  }
  d.reason = "gain below cost";
  return d;
}

void CostBenefitPolicy::record_outcome(bool invoked, double lb_cost_seconds,
                                       std::span<double const> loads_after) {
  if (!invoked) {
    return;
  }
  accumulated_gain_ = 0.0;
  cost_ema_ = cost_ema_ < 0.0
                  ? lb_cost_seconds
                  : params_.cost_ema_alpha * lb_cost_seconds +
                        (1.0 - params_.cost_ema_alpha) * cost_ema_;
  if (!loads_after.empty()) {
    // The placement just changed: re-seed the newest history point with
    // the projected post-LB loads so the next forecast extrapolates from
    // the state the next phase will actually start in.
    forecaster_.rebase(loads_after);
  }
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

std::unique_ptr<TriggerPolicy> make_policy(std::string_view spec) {
  if (spec == "always") {
    return std::make_unique<AlwaysPolicy>();
  }
  if (spec == "never") {
    return std::make_unique<NeverPolicy>();
  }
  if (spec.rfind("every-", 0) == 0) {
    auto const k = parse_suffix_double(spec, "every-");
    if (k < 1.0) {
      throw std::invalid_argument("every-k needs k >= 1: " +
                                  std::string{spec});
    }
    return std::make_unique<EveryKPolicy>(static_cast<std::uint64_t>(k));
  }
  if (spec.rfind("threshold-", 0) == 0) {
    return std::make_unique<ThresholdPolicy>(
        parse_suffix_double(spec, "threshold-"));
  }
  if (spec == "costbenefit") {
    return std::make_unique<CostBenefitPolicy>();
  }
  if (spec.rfind("costbenefit-", 0) == 0) {
    CostBenefitPolicy::Params params;
    params.model = std::string{spec.substr(std::string_view{"costbenefit-"}
                                               .size())};
    (void)make_load_model(params.model); // validate the model name now
    return std::make_unique<CostBenefitPolicy>(std::move(params));
  }
  throw std::invalid_argument("unknown policy spec: " + std::string{spec});
}

std::vector<std::string_view> policy_specs() {
  return {"always", "never", "every-4", "threshold-0.5", "costbenefit"};
}

} // namespace tlb::policy
