#pragma once

/// \file forecaster.hpp
/// The Forecaster joins a LoadModel with the per-rank load history it
/// predicts from: each phase the caller feeds the measured per-rank loads
/// (observe), and the forecaster produces the predicted next-phase load
/// vector together with its imbalance λ̂ = max/avg − 1 (predict). It also
/// scores itself: every observe() compares the measured loads against the
/// forecast issued the phase before and folds the relative L1 error into
/// a trailing EMA — the forecast-error metric the phase timeline records
/// and the cost/benefit trigger uses to discount unreliable forecasts.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "policy/load_model.hpp"

namespace tlb::policy {

/// One predicted next-phase state.
struct Forecast {
  std::vector<double> loads; ///< predicted per-rank loads
  double load_max = 0.0;
  double load_avg = 0.0;
  /// Predicted imbalance λ̂ = max/avg − 1 (0 when avg is 0).
  double imbalance = 0.0;
  /// False until the history holds at least one observation.
  bool valid = false;
};

class Forecaster {
public:
  /// \param model   Predictor applied to every rank's series.
  /// \param window  Bounded per-rank history length (oldest dropped).
  explicit Forecaster(std::unique_ptr<LoadModel> model,
                      std::size_t window = 64);

  [[nodiscard]] std::string_view model_name() const {
    return model_->name();
  }
  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] std::uint64_t observations() const { return observations_; }

  /// Feed one phase's measured per-rank loads. The rank count is fixed by
  /// the first call; later calls must match. Scores the previous
  /// forecast (if any) against `loads` before appending them.
  void observe(std::span<double const> loads);

  /// Predict the next phase from the current history. Also retains the
  /// forecast internally so the next observe() can score it.
  [[nodiscard]] Forecast predict();

  /// Replace the newest observation of every series with `loads`: called
  /// after an LB pass reshuffles the placement, so the history's latest
  /// point reflects the loads the *next* phase will actually start from
  /// rather than the pre-migration measurement. No-op on empty history;
  /// the rank count must match. Does not affect forecast scoring.
  void rebase(std::span<double const> loads);

  /// Relative L1 error of the most recently scored forecast:
  ///   Σ_r |pred_r − meas_r| / max(Σ_r meas_r, ε)
  /// 0 until a forecast has been scored.
  [[nodiscard]] double last_error() const { return last_error_; }

  /// EMA of the per-phase forecast error (same metric as last_error).
  [[nodiscard]] double error_ema() const { return error_ema_; }

  void clear();

private:
  std::unique_ptr<LoadModel> model_;
  std::size_t window_;
  /// history_[r] is rank r's series, oldest first, bounded by window_.
  std::vector<std::vector<double>> history_;
  std::vector<double> pending_forecast_; ///< awaiting scoring; empty if none
  double last_error_ = 0.0;
  double error_ema_ = 0.0;
  std::uint64_t scored_ = 0;
  std::uint64_t observations_ = 0;
};

/// Imbalance λ = max/avg − 1 of a load vector (0 on empty or zero-mean
/// input). Mirrors tlb::imbalance but lives here so the policy layer does
/// not pull in the stats header's LoadType vocabulary.
[[nodiscard]] double forecast_imbalance(std::span<double const> loads);

} // namespace tlb::policy
