#pragma once

/// \file load_model.hpp
/// Per-rank load-history models for the adaptive LB invocation policy.
/// A LoadModel is a pure predictor: given the observed history of one
/// rank's per-phase load (oldest first), it predicts the next phase's
/// load. The Forecaster (forecaster.hpp) applies one model across every
/// rank's series to obtain the predicted load vector and imbalance λ̂
/// that the trigger policies (trigger_policy.hpp) act on.
///
/// Models are deliberately stateless — all state lives in the history
/// window the Forecaster owns — so a model is trivially deterministic
/// and can be re-run against any slice of history (the forecast-error
/// property tests in tests/policy rely on this).
///
/// The model set follows Boulmier et al. (arXiv:1909.07168), which shows
/// forecast-driven invocation beating fixed-period policies when the
/// workload's evolution is predictable:
///   persistence — next = last (the principle-of-persistence baseline
///                 every phase-based balancer already assumes, §III-B)
///   ema         — exponentially weighted average; damps noise on
///                 stationary-but-noisy series
///   trend       — least-squares linear extrapolation; wins on ramps
///   periodic    — seasonal detector: finds the dominant period in the
///                 window and predicts the value one period back

#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace tlb::policy {

/// Pure next-value predictor over one load series.
class LoadModel {
public:
  LoadModel() = default;
  virtual ~LoadModel() = default;
  LoadModel(LoadModel const&) = delete;
  LoadModel& operator=(LoadModel const&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Predict the next value of a series (oldest first). An empty history
  /// predicts 0. Predictions are clamped to be non-negative — loads are
  /// nonnegative by construction.
  [[nodiscard]] virtual double predict(std::span<double const> history)
      const = 0;
};

/// next = last observation.
class PersistenceModel final : public LoadModel {
public:
  [[nodiscard]] std::string_view name() const override {
    return "persistence";
  }
  [[nodiscard]] double predict(std::span<double const> history) const override;
};

/// Exponential moving average with smoothing factor `alpha` (weight of the
/// newest observation).
class EmaModel final : public LoadModel {
public:
  explicit EmaModel(double alpha = 0.4);
  [[nodiscard]] std::string_view name() const override { return "ema"; }
  [[nodiscard]] double predict(std::span<double const> history) const override;
  [[nodiscard]] double alpha() const { return alpha_; }

private:
  double alpha_;
};

/// Ordinary least-squares line over the window, evaluated one step past
/// the end. Falls back to persistence with fewer than two observations.
class LinearTrendModel final : public LoadModel {
public:
  [[nodiscard]] std::string_view name() const override { return "trend"; }
  [[nodiscard]] double predict(std::span<double const> history) const override;
};

/// Seasonal predictor: scans candidate periods p in [2, |history|/2] and
/// scores each by the mean squared error of y[t] vs y[t-p] over the
/// window. If the best period beats the persistence baseline's error, the
/// prediction is the observation one period back (plus the window's mean
/// drift per period, so a seasonal series riding on a slow ramp is not
/// systematically lagged); otherwise it degrades to persistence.
class PeriodicModel final : public LoadModel {
public:
  /// \param min_cycles  How many full cycles the window must contain
  ///                    before a period is trusted (guards against locking
  ///                    onto noise in short histories).
  explicit PeriodicModel(int min_cycles = 2);
  [[nodiscard]] std::string_view name() const override { return "periodic"; }
  [[nodiscard]] double predict(std::span<double const> history) const override;

  /// The detected period for a series, or 0 when no candidate beats the
  /// persistence baseline (exposed for the lock-on property tests).
  [[nodiscard]] std::size_t detect_period(
      std::span<double const> history) const;

private:
  int min_cycles_;
};

/// Factory over the model names above ("persistence", "ema", "trend",
/// "periodic"). Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<LoadModel> make_load_model(
    std::string_view name);

/// Names accepted by make_load_model.
[[nodiscard]] std::vector<std::string_view> load_model_names();

} // namespace tlb::policy
