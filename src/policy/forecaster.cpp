#include "policy/forecaster.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tlb::policy {

namespace {

/// Weight of the newest error observation in the trailing EMA.
constexpr double kErrorEmaAlpha = 0.3;

} // namespace

double forecast_imbalance(std::span<double const> loads) {
  if (loads.empty()) {
    return 0.0;
  }
  double max = 0.0;
  double sum = 0.0;
  for (double const l : loads) {
    max = std::max(max, l);
    sum += l;
  }
  double const avg = sum / static_cast<double>(loads.size());
  return avg > 0.0 ? max / avg - 1.0 : 0.0;
}

Forecaster::Forecaster(std::unique_ptr<LoadModel> model, std::size_t window)
    : model_{std::move(model)}, window_{window} {
  TLB_EXPECTS(model_ != nullptr);
  TLB_EXPECTS(window_ >= 2);
}

void Forecaster::observe(std::span<double const> loads) {
  TLB_EXPECTS(!loads.empty());
  if (history_.empty()) {
    history_.resize(loads.size());
  }
  TLB_EXPECTS(history_.size() == loads.size());

  // Score the forecast issued for this phase, if one is pending.
  if (!pending_forecast_.empty()) {
    double abs_err = 0.0;
    double total = 0.0;
    for (std::size_t r = 0; r < loads.size(); ++r) {
      abs_err += std::abs(pending_forecast_[r] - loads[r]);
      total += loads[r];
    }
    constexpr double kEps = 1e-12;
    last_error_ = abs_err / std::max(total, kEps);
    error_ema_ = scored_ == 0 ? last_error_
                              : kErrorEmaAlpha * last_error_ +
                                    (1.0 - kErrorEmaAlpha) * error_ema_;
    ++scored_;
    pending_forecast_.clear();
  }

  for (std::size_t r = 0; r < loads.size(); ++r) {
    auto& series = history_[r];
    if (series.size() == window_) {
      series.erase(series.begin());
    }
    series.push_back(loads[r]);
  }
  ++observations_;
}

void Forecaster::rebase(std::span<double const> loads) {
  if (history_.empty()) {
    return;
  }
  TLB_EXPECTS(history_.size() == loads.size());
  for (std::size_t r = 0; r < loads.size(); ++r) {
    if (!history_[r].empty()) {
      history_[r].back() = loads[r];
    }
  }
}

Forecast Forecaster::predict() {
  Forecast f;
  if (history_.empty()) {
    return f;
  }
  f.loads.reserve(history_.size());
  double sum = 0.0;
  for (auto const& series : history_) {
    double const p = model_->predict(series);
    f.loads.push_back(p);
    f.load_max = std::max(f.load_max, p);
    sum += p;
  }
  f.load_avg = sum / static_cast<double>(f.loads.size());
  f.imbalance = f.load_avg > 0.0 ? f.load_max / f.load_avg - 1.0 : 0.0;
  f.valid = true;
  pending_forecast_ = f.loads;
  return f;
}

void Forecaster::clear() {
  history_.clear();
  pending_forecast_.clear();
  last_error_ = 0.0;
  error_ema_ = 0.0;
  scored_ = 0;
  observations_ = 0;
}

} // namespace tlb::policy
