#pragma once

/// \file types.hpp
/// Fundamental vocabulary types shared by every module.

#include <cstdint>
#include <limits>

namespace tlb {

/// Logical rank (process) identifier inside the simulated job.
using RankId = std::int32_t;

/// Globally-unique migratable task (object) identifier.
using TaskId = std::int64_t;

/// Task/rank load in simulated seconds.
using LoadType = double;

inline constexpr RankId invalid_rank = -1;
inline constexpr TaskId invalid_task = -1;

/// A single proposed or executed task relocation.
struct Migration {
  TaskId task = invalid_task;
  RankId from = invalid_rank;
  RankId to = invalid_rank;
  LoadType load = 0.0;

  friend bool operator==(Migration const&, Migration const&) = default;
};

} // namespace tlb
