#pragma once

/// \file config.hpp
/// Minimal command-line option parsing shared by benches and examples.
/// Supports `--key=value`, `--key value`, and boolean `--flag` forms.

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tlb {

/// Parsed command-line options. Unrecognized positional arguments are kept
/// in order. Lookup helpers parse and validate on access.
class Options {
public:
  Options() = default;

  /// Parse argv; throws std::invalid_argument on malformed input (an
  /// option with an empty key).
  static Options parse(int argc, char const* const* argv);

  [[nodiscard]] bool has(std::string_view key) const;

  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Typed access with a default; throws std::invalid_argument when the
  /// value is present but unparsable.
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  [[nodiscard]] std::vector<std::string> const& positional() const {
    return positional_;
  }

  /// Record a key (used by tests and for programmatic construction).
  void set(std::string key, std::string value);

  /// All parsed key/value options in sorted key order (for config echoes
  /// in machine-readable bench output).
  [[nodiscard]] std::map<std::string, std::string, std::less<>> const&
  items() const {
    return values_;
  }

private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

} // namespace tlb
