#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace tlb {

namespace {

bool looks_numeric(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  for (char const c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%' ||
          c == 'x')) {
      return false;
    }
  }
  return true;
}

bool needs_csv_quotes(std::string_view s) {
  return s.find_first_of(",\"\n") != std::string_view::npos;
}

} // namespace

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  TLB_EXPECTS(!headers_.empty());
}

Table& Table::begin_row() {
  TLB_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add_cell(std::string value) {
  TLB_EXPECTS(!rows_.empty());
  TLB_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add_cell(std::string_view value) {
  return add_cell(std::string{value});
}

Table& Table::add_cell(char const* value) {
  return add_cell(std::string{value});
}

Table& Table::add_cell(double value, int precision) {
  return add_cell(fmt(value, precision));
}

Table& Table::add_cell(long long value) {
  return add_cell(std::to_string(value));
}

Table& Table::add_cell(unsigned long long value) {
  return add_cell(std::to_string(value));
}

Table& Table::add_cell(int value) { return add_cell(std::to_string(value)); }

Table& Table::add_cell(std::size_t value) {
  return add_cell(std::to_string(value));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (auto const& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit = [&](std::vector<std::string> const& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::string_view const cell =
          c < cells.size() ? std::string_view{cells[c]} : std::string_view{};
      std::size_t const pad = widths[c] - cell.size();
      if (looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      os << (c + 1 < headers_.size() ? "  " : "");
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t const w : widths) {
    total += w;
  }
  total += 2 * (headers_.size() - 1);
  os << std::string(total, '-') << '\n';
  for (auto const& row : rows_) {
    emit(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](std::vector<std::string> const& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::string_view const cell = cells[c];
      if (needs_csv_quotes(cell)) {
        os << '"';
        for (char const ch : cell) {
          if (ch == '"') {
            os << '"';
          }
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
      if (c + 1 < cells.size()) {
        os << ',';
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (auto const& row : rows_) {
    emit(row);
  }
}

} // namespace tlb
