#pragma once

/// \file thread_annotations.hpp
/// Clang Thread Safety Analysis attribute macros (no-ops on other
/// compilers). Applying them turns the project's lock discipline into a
/// compile-time contract: a capability (a lock), the data it guards, and
/// the functions that require or acquire it are declared in the types, and
/// `-Werror=thread-safety` (CMake option TLB_THREAD_SAFETY, driven by
/// scripts/race_gate.sh) rejects any access pattern that violates the
/// declarations — including paths no test or TSan schedule ever executes.
///
/// Conventions in this tree:
///   - tlb::SpinLock is the annotated capability type; critical sections
///     are expressed with tlb::SpinLockGuard (a scoped capability), never
///     std::lock_guard, which the analysis cannot see through (tlb_lint
///     rule `no-raw-mutex` enforces this mechanically).
///   - Data owned by a lock carries TLB_GUARDED_BY(lock_); private helpers
///     that assume the lock is held carry TLB_REQUIRES(lock_).
///   - Thread-confined state (e.g. a mailbox's consumer-only stash) cannot
///     be expressed as a lock capability; such members stay unannotated
///     with an ownership comment, and their discipline is covered by the
///     TSan gate instead.
///
/// The macro set mirrors the attribute list documented at
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html (the same shape
/// abseil's thread_annotations.h uses), so the names translate directly.

#if defined(__clang__) && !defined(SWIG)
#define TLB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TLB_THREAD_ANNOTATION(x) // no-op: GCC/MSVC parse nothing here
#endif

/// Marks a class as a capability (lock). The string is the capability kind
/// used in diagnostics, e.g. TLB_CAPABILITY("mutex").
#define TLB_CAPABILITY(x) TLB_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define TLB_SCOPED_CAPABILITY TLB_THREAD_ANNOTATION(scoped_lockable)

/// Declares that the data member is protected by the given capability.
#define TLB_GUARDED_BY(x) TLB_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the pointed-to data (not the pointer) is protected.
#define TLB_PT_GUARDED_BY(x) TLB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the listed capabilities must be held on entry
/// (and are still held on exit).
#define TLB_REQUIRES(...)                                                      \
  TLB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not on entry).
#define TLB_ACQUIRE(...)                                                       \
  TLB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not on exit).
#define TLB_RELEASE(...)                                                       \
  TLB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the success return
/// value, e.g. TLB_TRY_ACQUIRE(true).
#define TLB_TRY_ACQUIRE(...)                                                   \
  TLB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (deadlock
/// prevention for self-locking public entry points).
#define TLB_EXCLUDES(...) TLB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares lock acquisition order between capabilities.
#define TLB_ACQUIRED_BEFORE(...)                                               \
  TLB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TLB_ACQUIRED_AFTER(...)                                                \
  TLB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define TLB_RETURN_CAPABILITY(x) TLB_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Reserve for code
/// whose safety argument is confinement or hand-rolled atomics that the
/// lock model cannot express; leave a comment saying which.
#define TLB_NO_THREAD_SAFETY_ANALYSIS                                          \
  TLB_THREAD_ANNOTATION(no_thread_safety_analysis)
