#pragma once

/// \file spinlock.hpp
/// A minimal test-and-test-and-set spinlock for very short critical
/// sections (the mailbox push/swap paths: an O(1) pointer exchange or a
/// bounded batch append). An uncontended acquire/release pair is a single
/// atomic RMW plus a plain store — roughly half the cost of the
/// std::mutex futex fast path, which matters when the lock sits on a
/// per-message hot path. The slow path backs off to yield so oversubscribed
/// worker pools (more workers than cores — the TSan suite runs 8 workers
/// on whatever the CI box has) cannot livelock against a descheduled
/// holder.
///
/// Built on std::atomic acquire/release, so ThreadSanitizer models it
/// precisely (no annotations needed).

#include <atomic>
#include <thread>

namespace tlb {

class SpinLock {
public:
  void lock() noexcept {
    int spins = 0;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // Test-and-test-and-set: spin on a plain load so waiting cores don't
      // ping-pong the cache line with RMWs.
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > 64) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

private:
  std::atomic<bool> flag_{false};
};

} // namespace tlb
