#pragma once

/// \file spinlock.hpp
/// A minimal test-and-test-and-set spinlock for very short critical
/// sections (the mailbox push/swap paths: an O(1) pointer exchange or a
/// bounded batch append). An uncontended acquire/release pair is a single
/// atomic RMW plus a plain store — roughly half the cost of the
/// std::mutex futex fast path, which matters when the lock sits on a
/// per-message hot path. The slow path backs off to yield so oversubscribed
/// worker pools (more workers than cores — the TSan suite runs 8 workers
/// on whatever the CI box has) cannot livelock against a descheduled
/// holder.
///
/// Built on std::atomic acquire/release, so ThreadSanitizer models it
/// precisely (no annotations needed for TSan). For the *static* race gate
/// the class is a Clang thread-safety capability: guard data with
/// TLB_GUARDED_BY(lock_) and enter critical sections through SpinLockGuard
/// so -Werror=thread-safety can prove the discipline at compile time.

#include <atomic>
#include <thread>

#include "support/thread_annotations.hpp"

namespace tlb {

class TLB_CAPABILITY("mutex") SpinLock {
public:
  void lock() noexcept TLB_ACQUIRE() {
    int spins = 0;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // Test-and-test-and-set: spin on a plain load so waiting cores don't
      // ping-pong the cache line with RMWs.
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > 64) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  [[nodiscard]] bool try_lock() noexcept TLB_TRY_ACQUIRE(true) {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept TLB_RELEASE() {
    flag_.store(false, std::memory_order_release);
  }

private:
  std::atomic<bool> flag_{false};
};

/// RAII critical section over a SpinLock. This is the project's sanctioned
/// guard: unlike std::lock_guard it is a scoped capability, so Clang's
/// thread-safety analysis sees the acquire/release and can check every
/// TLB_GUARDED_BY access inside the scope (tlb_lint's `no-raw-mutex` rule
/// rejects the std:: guards that would blind the analysis).
class TLB_SCOPED_CAPABILITY SpinLockGuard {
public:
  explicit SpinLockGuard(SpinLock& lock) TLB_ACQUIRE(lock) : lock_{lock} {
    lock_.lock();
  }

  SpinLockGuard(SpinLockGuard const&) = delete;
  SpinLockGuard& operator=(SpinLockGuard const&) = delete;

  ~SpinLockGuard() TLB_RELEASE() { lock_.unlock(); }

private:
  SpinLock& lock_;
};

} // namespace tlb
