#include "support/rng.hpp"

#include <cmath>

namespace tlb {

double Rng::normal() {
  // Box-Muller; discard the paired deviate to keep Rng state minimal.
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  double const u2 = uniform();
  constexpr double two_pi = 6.28318530717958647692;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  TLB_EXPECTS(sigma >= 0.0);
  return std::exp(mu + sigma * normal());
}

double Rng::gamma(double shape, double scale) {
  TLB_EXPECTS(shape > 0.0);
  TLB_EXPECTS(scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and apply the standard power correction.
    double const u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  double const d = shape - 1.0 / 3.0;
  double const c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) {
      continue;
    }
    v = v * v * v;
    double const u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v * scale;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::exponential(double mean) {
  TLB_EXPECTS(mean > 0.0);
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return -mean * std::log(u);
}

} // namespace tlb
