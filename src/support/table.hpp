#pragma once

/// \file table.hpp
/// Aligned console table and CSV emission, used by the benchmark harnesses
/// to print rows in the same layout as the paper's tables and figure series.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tlb {

/// A simple row/column table. Cells are strings; helpers format numerics.
/// The console renderer right-aligns numeric-looking cells; the CSV
/// renderer quotes only when needed.
class Table {
public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add_cell calls fill it left to right.
  Table& begin_row();
  Table& add_cell(std::string value);
  Table& add_cell(std::string_view value);
  Table& add_cell(char const* value);
  Table& add_cell(double value, int precision = 3);
  Table& add_cell(long long value);
  Table& add_cell(unsigned long long value);
  Table& add_cell(int value);
  Table& add_cell(std::size_t value);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Raw access for machine-readable re-emission (bench --json output).
  [[nodiscard]] std::vector<std::string> const& headers() const {
    return headers_;
  }
  [[nodiscard]] std::vector<std::vector<std::string>> const& data() const {
    return rows_;
  }

  /// Render with aligned columns and a header underline.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-ish quoting).
  void print_csv(std::ostream& os) const;

  /// Convenience: format a double with fixed precision.
  static std::string fmt(double value, int precision = 3);

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace tlb
