#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace tlb {

double LoadSummary::imbalance() const {
  if (count == 0 || mean <= 0.0) {
    return 0.0;
  }
  return max / mean - 1.0;
}

LoadSummary summarize(std::span<LoadType const> loads) {
  LoadSummary s;
  if (loads.empty()) {
    return s;
  }
  s.count = loads.size();
  s.min = std::numeric_limits<LoadType>::max();
  s.max = std::numeric_limits<LoadType>::lowest();
  for (LoadType const l : loads) {
    s.min = std::min(s.min, l);
    s.max = std::max(s.max, l);
    s.sum += l;
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double var = 0.0;
  for (LoadType const l : loads) {
    double const d = l - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

double imbalance(std::span<LoadType const> loads) {
  return summarize(loads).imbalance();
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double const delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(RunningStats const& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  double const delta = other.mean_ - mean_;
  auto const na = static_cast<double>(n_);
  auto const nb = static_cast<double>(other.n_);
  double const n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  TLB_EXPECTS(hi > lo);
  TLB_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  double const frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  TLB_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  TLB_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double percentile(std::span<double const> data, double q) {
  TLB_EXPECTS(q >= 0.0 && q <= 100.0);
  if (data.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  double const rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  auto const lo = static_cast<std::size_t>(rank);
  auto const hi = std::min(lo + 1, sorted.size() - 1);
  double const frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // namespace tlb
