#pragma once

/// \file stats.hpp
/// Descriptive statistics and the paper's imbalance metric (Eqn. 1):
///   I = l_max / l_ave − 1
/// plus helper accumulators used throughout instrumentation and benches.

#include <cstddef>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace tlb {

/// Summary of a set of per-rank (or per-task) loads.
struct LoadSummary {
  LoadType min = 0.0;
  LoadType max = 0.0;
  LoadType sum = 0.0;
  LoadType mean = 0.0;
  LoadType stddev = 0.0;
  std::size_t count = 0;

  /// The paper's imbalance metric I = max/mean − 1; 0 means perfect balance.
  [[nodiscard]] double imbalance() const;
};

/// Compute a LoadSummary over a span of loads. Empty input yields an
/// all-zero summary with count == 0.
[[nodiscard]] LoadSummary summarize(std::span<LoadType const> loads);

/// Imbalance of a load vector directly (Eqn. 1); returns 0 for empty input
/// or zero mean.
[[nodiscard]] double imbalance(std::span<LoadType const> loads);

/// Welford online mean/variance accumulator.
class RunningStats {
public:
  void add(double x);
  void merge(RunningStats const& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used for reporting task-load distributions.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Percentile of a data set (linear interpolation between closest ranks).
/// q in [0, 100]. The input is copied and sorted.
[[nodiscard]] double percentile(std::span<double const> data, double q);

} // namespace tlb
