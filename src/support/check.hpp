#pragma once

/// \file check.hpp
/// The invariant auditor: machine-checked algebraic invariants woven
/// through the hot paths (CMF validity, criterion/objective monotonicity,
/// load/task conservation, termination-counter consistency).
///
/// Unlike the contract macros in assert.hpp — which are always on and
/// guard cheap API preconditions — auditor checks may be O(n) shadow
/// recomputations, so they compile out entirely unless the build enables
/// them (`-DTLB_AUDIT=ON`, which defines TLB_AUDIT_ENABLED=1). When
/// compiled in they can still be disabled at runtime with the environment
/// variable `TLB_AUDIT=0`, and redirected from abort-on-violation to a
/// count-and-continue mode (for tests that deliberately corrupt state and
/// assert the auditor fires) with `tlb::audit::set_mode`.
///
/// Usage:
///
///   TLB_INVARIANT(total_after == total_before,
///                 "task-count conservation across migrate");
///   TLB_AUDIT_BLOCK {
///     double shadow = std::accumulate(w.begin(), w.end(), 0.0);
///     TLB_INVARIANT(near(shadow, tree.total()), "Fenwick total == sum(w)");
///   }
///
/// TLB_AUDIT_BLOCK guards expensive shadow computations: the block is
/// removed at compile time in non-audit builds and skipped at runtime when
/// the auditor is disabled via the environment.

#include <atomic>
#include <string>

#ifndef TLB_AUDIT_ENABLED
#define TLB_AUDIT_ENABLED 0
#endif

namespace tlb::audit {

/// What a failed invariant does.
enum class Mode {
  abort_process, ///< print and std::abort() (default: violations are bugs)
  count,         ///< record and continue (self-tests of the auditor)
};

/// True when auditing is compiled in AND not disabled via `TLB_AUDIT=0`.
[[nodiscard]] bool enabled();

void set_mode(Mode mode);
[[nodiscard]] Mode mode();

/// Violations recorded while in Mode::count.
[[nodiscard]] std::size_t violation_count();
void reset_violations();
/// Description of the most recent violation ("" if none).
[[nodiscard]] std::string last_violation();

/// Report a failed invariant. Called by TLB_INVARIANT; aborts or records
/// according to the active mode.
void report(char const* expr, char const* what, char const* file, int line);

/// Hook invoked once, after the violation is printed and immediately
/// before an abort-mode violation terminates the process — the flight
/// recorder's attachment point (obs::install_flight_recorder). Never
/// called in Mode::count. The hook must not throw: it runs on the abort
/// path. nullptr uninstalls.
using FailureHook = void (*)(char const* what);
void set_failure_hook(FailureHook hook);
[[nodiscard]] FailureHook failure_hook();

namespace detail {
/// RAII-free helper so `TLB_AUDIT_BLOCK { ... }` parses as an if-body.
[[nodiscard]] inline bool block_enabled() {
#if TLB_AUDIT_ENABLED
  return enabled();
#else
  return false;
#endif
}
} // namespace detail

} // namespace tlb::audit

#if TLB_AUDIT_ENABLED

#define TLB_INVARIANT(expr, what)                                              \
  ((expr) ? (void)0                                                            \
          : ::tlb::audit::report(#expr, what, __FILE__, __LINE__))

/// Guard for audit-only shadow computations; compiled out entirely in
/// non-audit builds, skipped at runtime when TLB_AUDIT=0.
#define TLB_AUDIT_BLOCK if (::tlb::audit::enabled())

#else

/// Non-audit builds: the condition stays inside an unevaluated operand so
/// it is still parsed and type-checked (and its operands count as used),
/// but generates no code.
#define TLB_INVARIANT(expr, what) ((void)sizeof(!(expr)))
#define TLB_AUDIT_BLOCK if constexpr (false)

#endif
