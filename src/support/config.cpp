#include "support/config.hpp"

#include <charconv>
#include <stdexcept>

namespace tlb {

Options Options::parse(int argc, char const* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string_view const arg = argv[i];
    if (!arg.starts_with("--")) {
      opts.positional_.emplace_back(arg);
      continue;
    }
    std::string_view const body = arg.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("empty option name: '--'");
    }
    if (auto const eq = body.find('='); eq != std::string_view::npos) {
      if (eq == 0) {
        throw std::invalid_argument("empty option name in '" +
                                    std::string{arg} + "'");
      }
      opts.values_[std::string{body.substr(0, eq)}] =
          std::string{body.substr(eq + 1)};
    } else if (i + 1 < argc && std::string_view{argv[i + 1]}.substr(0, 2) !=
                                   std::string_view{"--"}) {
      opts.values_[std::string{body}] = argv[i + 1];
      ++i;
    } else {
      opts.values_[std::string{body}] = "true";
    }
  }
  return opts;
}

bool Options::has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> Options::get(std::string_view key) const {
  auto const it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::int64_t Options::get_int(std::string_view key,
                              std::int64_t fallback) const {
  auto const v = get(key);
  if (!v) {
    return fallback;
  }
  std::int64_t out = 0;
  auto const [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    throw std::invalid_argument("option --" + std::string{key} +
                                " expects an integer, got '" + *v + "'");
  }
  return out;
}

double Options::get_double(std::string_view key, double fallback) const {
  auto const v = get(key);
  if (!v) {
    return fallback;
  }
  try {
    std::size_t pos = 0;
    double const out = std::stod(*v, &pos);
    if (pos != v->size()) {
      throw std::invalid_argument("");
    }
    return out;
  } catch (std::exception const&) {
    throw std::invalid_argument("option --" + std::string{key} +
                                " expects a number, got '" + *v + "'");
  }
}

std::string Options::get_string(std::string_view key,
                                std::string fallback) const {
  auto const v = get(key);
  return v ? *v : std::move(fallback);
}

bool Options::get_bool(std::string_view key, bool fallback) const {
  auto const v = get(key);
  if (!v) {
    return fallback;
  }
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") {
    return true;
  }
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") {
    return false;
  }
  throw std::invalid_argument("option --" + std::string{key} +
                              " expects a boolean, got '" + *v + "'");
}

void Options::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

} // namespace tlb
