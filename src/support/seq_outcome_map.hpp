#pragma once

/// \file seq_outcome_map.hpp
/// A flat open-addressing map from proposal sequence numbers (u64) to
/// one-byte outcomes, replacing the node-based std::map dedup tables on
/// the resilient-transfer fault path: every delivery attempt does a find,
/// so lookups should cost one or two probes in a contiguous table rather
/// than a pointer chase per tree level.
///
/// Deliberately minimal for the dedup use case: insert and find only (a
/// decided proposal is never un-decided), keys are arbitrary u64 values,
/// and the table grows by doubling at ~70% occupancy. Linear probing over
/// a power-of-two capacity with a splitmix64-finalizer hash — sequence
/// numbers are structured (origin rank in the high bits, counter in the
/// low), so the finalizer's avalanche is what spreads them.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace tlb {

class SeqOutcomeMap {
public:
  SeqOutcomeMap() = default;

  /// Record `outcome` for `seq`. Precondition: seq not already present
  /// (outcomes are immutable once decided).
  void insert(std::uint64_t seq, char outcome) {
    if ((size_ + 1) * 10 > capacity() * 7) {
      grow();
    }
    auto& slot = slots_[probe(seq)];
    TLB_EXPECTS(!slot.used);
    slot.key = seq;
    slot.outcome = outcome;
    slot.used = true;
    ++size_;
  }

  /// The recorded outcome for `seq`, or nullptr if none was recorded.
  [[nodiscard]] char const* find(std::uint64_t seq) const {
    if (slots_.empty()) {
      return nullptr;
    }
    auto const& slot = slots_[probe(seq)];
    return slot.used ? &slot.outcome : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

private:
  struct Slot {
    std::uint64_t key = 0;
    char outcome = 0;
    bool used = false;
  };

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// splitmix64 finalizer: full-avalanche mix of the key.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Index of `seq`'s slot: its own if present, else the empty slot where
  /// it would be inserted. Requires a non-full table (the growth policy
  /// guarantees free slots, so the probe always terminates).
  [[nodiscard]] std::size_t probe(std::uint64_t seq) const {
    std::size_t const mask = capacity() - 1;
    std::size_t i = static_cast<std::size_t>(mix(seq)) & mask;
    while (slots_[i].used && slots_[i].key != seq) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow() {
    std::size_t const new_cap = slots_.empty() ? 16 : capacity() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    for (Slot const& slot : old) {
      if (slot.used) {
        auto& dest = slots_[probe(slot.key)];
        dest = slot;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

} // namespace tlb
