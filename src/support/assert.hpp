#pragma once

/// \file assert.hpp
/// Contract-checking macros in the style of the C++ Core Guidelines'
/// Expects/Ensures. These are always on (including release builds) because
/// the library is a research artifact where silent contract violations
/// invalidate experiments; the checks are cheap relative to the workloads.
///
/// These are distinct from the invariant auditor (support/check.hpp):
/// contracts guard cheap caller/callee obligations in every build, while
/// TLB_INVARIANT / TLB_AUDIT_BLOCK cover algorithm-level invariants whose
/// verification is too expensive for release builds and is compiled in
/// only with -DTLB_AUDIT=ON.

#include <cstdio>
#include <cstdlib>

namespace tlb::detail {

[[noreturn]] inline void
assert_fail(char const* kind, char const* expr, char const* file, int line) {
  std::fprintf(stderr, "tlb: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

} // namespace tlb::detail

#define TLB_ASSERT(expr)                                                       \
  ((expr) ? (void)0                                                           \
          : ::tlb::detail::assert_fail("assertion", #expr, __FILE__, __LINE__))

/// Precondition on a public API entry point.
#define TLB_EXPECTS(expr)                                                      \
  ((expr) ? (void)0                                                           \
          : ::tlb::detail::assert_fail("precondition", #expr, __FILE__,        \
                                       __LINE__))

/// Postcondition guaranteed to callers.
#define TLB_ENSURES(expr)                                                      \
  ((expr) ? (void)0                                                           \
          : ::tlb::detail::assert_fail("postcondition", #expr, __FILE__,       \
                                       __LINE__))
