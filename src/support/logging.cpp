#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace tlb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warn};

char const* level_name(LogLevel level) {
  switch (level) {
  case LogLevel::trace: return "TRACE";
  case LogLevel::debug: return "DEBUG";
  case LogLevel::info: return "INFO";
  case LogLevel::warn: return "WARN";
  case LogLevel::error: return "ERROR";
  case LogLevel::off: return "OFF";
  }
  return "?";
}
} // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {

void log_emit(LogLevel level, std::string_view component,
              std::string_view message) {
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] [";
  line += component;
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace detail

} // namespace tlb
