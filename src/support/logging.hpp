#pragma once

/// \file logging.hpp
/// Leveled logging to stderr. Thread-safe at line granularity (messages are
/// assembled in a buffer and emitted in one write). Off by default above
/// `warn` so library code can log diagnostics without polluting bench output.

#include <sstream>
#include <string_view>

namespace tlb {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3,
                            error = 4, off = 5 };

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, std::string_view component,
              std::string_view message);
}

/// Streaming log statement:
///   TLB_LOG(info, "runtime") << "ranks=" << p;
/// The stream body is only evaluated when the level is enabled.
#define TLB_LOG(level_, component_)                                           \
  if (::tlb::LogLevel::level_ < ::tlb::log_level()) {                         \
  } else                                                                      \
    ::tlb::detail::LogLine{::tlb::LogLevel::level_, component_}.stream()

namespace detail {

class LogLine {
public:
  LogLine(LogLevel level, std::string_view component)
      : level_{level}, component_{component} {}
  LogLine(LogLine const&) = delete;
  LogLine& operator=(LogLine const&) = delete;
  ~LogLine() { log_emit(level_, component_, buffer_.str()); }

  std::ostringstream& stream() { return buffer_; }

private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream buffer_;
};

} // namespace detail

} // namespace tlb
