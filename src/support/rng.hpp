#pragma once

/// \file rng.hpp
/// Deterministic random number generation.
///
/// Every randomized algorithm in this library (gossip peer selection, CMF
/// sampling, workload generation) takes an explicit seed so that any
/// experiment is exactly reproducible. The core generator is splitmix64 —
/// tiny state, excellent statistical quality for this use, and trivially
/// splittable so each simulated rank can derive an independent stream from
/// (experiment seed, rank id, stream tag).

#include <cstdint>
#include <span>

#include "support/assert.hpp"

namespace tlb {

/// splitmix64 generator. Satisfies std::uniform_random_bit_generator so it
/// can also feed <random> distributions when convenient.
class Rng {
public:
  using result_type = std::uint64_t;

  Rng() = default;
  explicit Rng(std::uint64_t seed) : state_{seed} {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Derive an independent stream, e.g. per rank or per trial. Mixing the
  /// tag through one generator step decorrelates nearby tags.
  [[nodiscard]] Rng split(std::uint64_t tag) const {
    Rng mixer{state_ ^ (0x632be59bd9b4e019ull * (tag + 1))};
    return Rng{mixer()};
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t uniform_below(std::uint64_t bound) {
    TLB_EXPECTS(bound > 0);
    while (true) {
      std::uint64_t const x = (*this)();
      __uint128_t const m = static_cast<__uint128_t>(x) * bound;
      auto const lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    TLB_EXPECTS(lo <= hi);
    auto const span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    TLB_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal deviate (Box-Muller, one value per call; we do not
  /// cache the second deviate to keep the state a single word).
  double normal();

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Gamma(shape k, scale theta) via Marsaglia-Tsang; used to generate
  /// task-load distributions with controlled skew.
  double gamma(double shape, double scale);

  /// Exponential with the given mean.
  double exponential(double mean);

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      auto const j = uniform_below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Pick an index in [0, n) uniformly.
  std::size_t index(std::size_t n) {
    TLB_EXPECTS(n > 0);
    return static_cast<std::size_t>(uniform_below(n));
  }

private:
  std::uint64_t state_ = 0x853c49e6748fea9bull;
};

/// Derive a child seed from a root seed and a stream tag: the splitmix
/// derivation that threads a run's single root seed (RuntimeConfig::seed)
/// into subordinate components that need a plain integer seed rather than
/// an Rng (e.g. an embedded runtime's config). Components that can hold an
/// Rng should prefer Rng{root}.split(tag) directly.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t root,
                                               std::uint64_t tag) {
  Rng mixer = Rng{root}.split(tag);
  return mixer();
}

} // namespace tlb
