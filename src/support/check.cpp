#include "support/check.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"

namespace tlb::audit {

namespace {

std::atomic<Mode> g_mode{Mode::abort_process};
std::atomic<FailureHook> g_failure_hook{nullptr};
std::atomic<std::size_t> g_violations{0};
SpinLock g_last_mutex;
std::string g_last TLB_GUARDED_BY(g_last_mutex);

bool env_enabled() {
  // Read once: toggling mid-run would make audit coverage nondeterministic.
  static bool const value = [] {
    char const* const v = std::getenv("TLB_AUDIT");
    if (v == nullptr) {
      return true; // compiled-in auditing defaults to on
    }
    return !(v[0] == '0' && v[1] == '\0');
  }();
  return value;
}

} // namespace

bool enabled() { return TLB_AUDIT_ENABLED != 0 && env_enabled(); }

void set_mode(Mode m) { g_mode.store(m, std::memory_order_relaxed); }

Mode mode() { return g_mode.load(std::memory_order_relaxed); }

std::size_t violation_count() {
  return g_violations.load(std::memory_order_acquire);
}

void reset_violations() {
  SpinLockGuard lock{g_last_mutex};
  g_last.clear();
  g_violations.store(0, std::memory_order_release);
}

std::string last_violation() {
  SpinLockGuard lock{g_last_mutex};
  return g_last;
}

void report(char const* expr, char const* what, char const* file, int line) {
  if (mode() == Mode::count) {
    {
      SpinLockGuard lock{g_last_mutex};
      g_last = std::string{what} + ": (" + expr + ")";
    }
    g_violations.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  std::fprintf(stderr, "tlb: invariant violated: %s: (%s) at %s:%d\n", what,
               expr, file, line);
  if (FailureHook const hook =
          g_failure_hook.load(std::memory_order_acquire)) {
    hook(what);
  }
  std::abort();
}

void set_failure_hook(FailureHook hook) {
  g_failure_hook.store(hook, std::memory_order_release);
}

FailureHook failure_hook() {
  return g_failure_hook.load(std::memory_order_acquire);
}

} // namespace tlb::audit
