#include "fault/fault_config.hpp"

#include <stdexcept>

namespace tlb::fault {

namespace {

constexpr std::array kProtocolKinds{rt::MessageKind::gossip,
                                    rt::MessageKind::transfer,
                                    rt::MessageKind::migration};

} // namespace

FaultConfig& FaultConfig::fault_protocol_kinds(KindFaults const& faults) {
  for (rt::MessageKind const kind : kProtocolKinds) {
    kinds[static_cast<std::size_t>(kind)] = faults;
  }
  return *this;
}

FaultConfig FaultConfig::none() {
  FaultConfig cfg;
  cfg.name = "none";
  return cfg;
}

FaultConfig FaultConfig::drops() {
  FaultConfig cfg;
  cfg.name = "drops";
  cfg.fault_protocol_kinds(KindFaults{.drop = 0.05});
  return cfg;
}

FaultConfig FaultConfig::delays() {
  FaultConfig cfg;
  cfg.name = "delays";
  cfg.fault_protocol_kinds(
      KindFaults{.delay = 0.20, .delay_min_polls = 1, .delay_max_polls = 16});
  return cfg;
}

FaultConfig FaultConfig::duplicates() {
  FaultConfig cfg;
  cfg.name = "duplicates";
  cfg.fault_protocol_kinds(KindFaults{.duplicate = 0.05});
  return cfg;
}

FaultConfig FaultConfig::stragglers() {
  FaultConfig cfg;
  cfg.name = "stragglers";
  cfg.straggler_stride = 4;
  cfg.straggler_period = 4;
  return cfg;
}

FaultConfig FaultConfig::crash() {
  FaultConfig cfg;
  cfg.name = "crash";
  cfg.crash_rank = 1;
  cfg.crash_at_poll = 512;
  cfg.fault_protocol_kinds(KindFaults{.drop = 0.02});
  return cfg;
}

FaultConfig FaultConfig::chaos() {
  FaultConfig cfg;
  cfg.name = "chaos";
  cfg.fault_protocol_kinds(KindFaults{.drop = 0.03,
                                      .duplicate = 0.03,
                                      .delay = 0.10,
                                      .delay_min_polls = 1,
                                      .delay_max_polls = 12});
  cfg.straggler_stride = 8;
  cfg.straggler_period = 3;
  return cfg;
}

FaultConfig FaultConfig::profile(std::string_view name) {
  if (name == "none") {
    return none();
  }
  if (name == "drops") {
    return drops();
  }
  if (name == "delays") {
    return delays();
  }
  if (name == "duplicates") {
    return duplicates();
  }
  if (name == "stragglers") {
    return stragglers();
  }
  if (name == "crash") {
    return crash();
  }
  if (name == "chaos") {
    return chaos();
  }
  throw std::invalid_argument{"unknown fault profile: " + std::string{name}};
}

std::vector<std::string_view> FaultConfig::profile_names() {
  return {"none",       "drops", "delays", "duplicates",
          "stragglers", "crash", "chaos"};
}

} // namespace tlb::fault
