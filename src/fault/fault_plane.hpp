#pragma once

/// \file fault_plane.hpp
/// The seeded, deterministic fault plane: interprets a FaultConfig as
/// per-send and per-drain decisions through the rt::FaultHook interface.
///
/// Determinism contract: every decision is a pure function of
/// (config, seed, decision stream position). Send decisions draw from a
/// per-sender splitmix stream (handlers of one rank execute
/// single-threaded, so each stream advances in a deterministic order under
/// the sequential driver — the chaos suite's reproducibility basis), and
/// drain gating is a pure function of (rank, poll) with no RNG at all, so
/// stragglers, stalls, and the crash point replay exactly across runs.
///
/// Thread-safety matches the runtime's execution model: stream r is only
/// touched by rank r's handlers (or the driver stream by the driver
/// thread), and the crash flag is an atomic published by the crashed
/// rank's owning worker. Lock-free by design, so nothing here carries the
/// capability annotations of support/thread_annotations.hpp; rank-stream
/// confinement is exercised by the TSan-run chaos suite.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_config.hpp"
#include "runtime/fault_hook.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace tlb::fault {

class FaultPlane final : public rt::FaultHook {
public:
  /// \param config    Fault regime to enact.
  /// \param num_ranks Rank count of the runtime this plane will serve.
  /// \param root_seed The run's single root seed (RuntimeConfig::seed);
  ///                  the plane derives its own stream family from it via
  ///                  rt::kFaultStreamTag, so fault decisions never
  ///                  perturb the protocol RNG streams.
  FaultPlane(FaultConfig config, RankId num_ranks, std::uint64_t root_seed);

  [[nodiscard]] rt::FaultDecision on_send(RankId from, RankId to,
                                          rt::MessageKind kind) override;
  [[nodiscard]] rt::DrainGate on_drain(RankId rank,
                                       std::uint64_t poll) override;

  [[nodiscard]] FaultConfig const& config() const { return config_; }
  [[nodiscard]] bool crashed(RankId rank) const {
    return crashed_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  /// Total on_send decisions taken (observability for the bench/tests).
  [[nodiscard]] std::uint64_t send_decisions() const {
    return send_decisions_.load(std::memory_order_relaxed);
  }

private:
  FaultConfig config_;
  RankId num_ranks_;
  bool any_message_faults_;
  /// One decision stream per sending rank, plus one for the driver
  /// (from == invalid_rank) at index num_ranks_.
  std::vector<Rng> send_rngs_;
  std::vector<std::atomic<bool>> crashed_;
  std::atomic<std::uint64_t> send_decisions_{0};
};

/// Construct a FaultPlane for `rt` (seed and rank count come from its
/// config) and install it as the runtime's fault hook. The returned owner
/// must outlive the runtime's use of the hook; destroying it without
/// calling rt.set_fault_hook(nullptr) first is a use-after-free.
[[nodiscard]] std::unique_ptr<FaultPlane>
install_fault_plane(rt::Runtime& rt, FaultConfig config);

} // namespace tlb::fault
