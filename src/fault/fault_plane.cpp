#include "fault/fault_plane.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "support/assert.hpp"

namespace tlb::fault {

FaultPlane::FaultPlane(FaultConfig config, RankId num_ranks,
                       std::uint64_t root_seed)
    : config_{std::move(config)},
      num_ranks_{num_ranks},
      any_message_faults_{config_.message_faults_active()},
      crashed_(static_cast<std::size_t>(num_ranks)) {
  TLB_EXPECTS(num_ranks > 0);
  for (KindFaults const& k : config_.kinds) {
    TLB_EXPECTS(k.drop >= 0.0 && k.duplicate >= 0.0 && k.delay >= 0.0);
    TLB_EXPECTS(k.drop + k.duplicate + k.delay <= 1.0);
    TLB_EXPECTS(k.delay_min_polls >= 1 &&
                k.delay_min_polls <= k.delay_max_polls);
  }
  Rng const fault_root = Rng{root_seed}.split(rt::kFaultStreamTag);
  send_rngs_.reserve(static_cast<std::size_t>(num_ranks) + 1);
  for (RankId r = 0; r <= num_ranks; ++r) {
    send_rngs_.push_back(fault_root.split(static_cast<std::uint64_t>(r)));
  }
}

rt::FaultDecision FaultPlane::on_send(RankId from, RankId to,
                                      rt::MessageKind kind) {
  // A dead destination swallows everything aimed at it; deciding at send
  // time keeps its mailbox from churning between purge visits.
  if (config_.crash_rank != invalid_rank &&
      crashed_[static_cast<std::size_t>(to)].load(std::memory_order_acquire)) {
    return {rt::FaultAction::drop, 0};
  }
  if (!any_message_faults_) {
    return {};
  }
  KindFaults const& faults = config_.kinds[static_cast<std::size_t>(kind)];
  if (!faults.active()) {
    return {};
  }
  // One stream per sender; the driver (from == invalid_rank) gets the
  // extra slot. Each stream is only advanced by its own rank's handlers.
  auto const stream = static_cast<std::size_t>(
      from == invalid_rank ? num_ranks_ : from);
  Rng& rng = send_rngs_[stream];
  send_decisions_.fetch_add(1, std::memory_order_relaxed);
  double const u = rng.uniform();
  if (u < faults.drop) {
    return {rt::FaultAction::drop, 0};
  }
  if (u < faults.drop + faults.duplicate) {
    return {rt::FaultAction::duplicate, 0};
  }
  if (u < faults.drop + faults.duplicate + faults.delay) {
    auto const polls = static_cast<std::uint32_t>(rng.uniform_int(
        static_cast<std::int64_t>(faults.delay_min_polls),
        static_cast<std::int64_t>(faults.delay_max_polls)));
    return {rt::FaultAction::delay, polls};
  }
  return {};
}

rt::DrainGate FaultPlane::on_drain(RankId rank, std::uint64_t poll) {
  auto const slot = static_cast<std::size_t>(rank);
  if (config_.crash_rank == rank) {
    if (crashed_[slot].load(std::memory_order_relaxed)) {
      return rt::DrainGate::crashed;
    }
    if (poll >= config_.crash_at_poll) {
      crashed_[slot].store(true, std::memory_order_release);
#if TLB_TELEMETRY_ENABLED
      if (obs::enabled()) {
        // The injected crash just fired (first transition only — the
        // early-return above covers later polls): capture the black box
        // before the runtime purges the dead rank's mailbox.
        (void)obs::dump_flight_record("fault_crash");
      }
#endif
      return rt::DrainGate::crashed;
    }
  }
  for (StallWindow const& stall : config_.stalls) {
    if (stall.rank == rank && poll >= stall.from_poll &&
        poll < stall.until_poll) {
      return rt::DrainGate::stalled;
    }
  }
  if (config_.straggler_stride > 0 &&
      rank % config_.straggler_stride == config_.straggler_stride - 1 &&
      poll % config_.straggler_period != 0) {
    return rt::DrainGate::stalled;
  }
  return rt::DrainGate::open;
}

std::unique_ptr<FaultPlane> install_fault_plane(rt::Runtime& rt,
                                                FaultConfig config) {
  auto plane = std::make_unique<FaultPlane>(std::move(config), rt.num_ranks(),
                                            rt.config().seed);
  rt.set_fault_hook(plane.get());
  return plane;
}

} // namespace tlb::fault
