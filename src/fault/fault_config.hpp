#pragma once

/// \file fault_config.hpp
/// Declarative description of one fault regime: per-MessageKind message
/// faults (drop / duplicate / delay probabilities and delay bounds), rank
/// slowdown (stragglers), transient rank stalls, and a mid-epoch rank
/// crash. A FaultConfig is pure data — the seeded decision machinery that
/// interprets it lives in FaultPlane — so profiles can be named, printed,
/// and swept by the chaos harness.
///
/// The canonical profiles (profile()/profile_names()) deliberately leave
/// MessageKind::other and MessageKind::termination clean: collective
/// reductions and termination waves are control traffic the protocols do
/// not retry yet, so the profiles exercise the hardened paths (gossip,
/// transfer, migration) without wedging the substrate. Tests that want to
/// fault control traffic construct a config by hand.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/network_stats.hpp"
#include "support/types.hpp"

namespace tlb::fault {

/// Message-fault probabilities for one MessageKind. Evaluated in the
/// order drop, duplicate, delay from a single uniform draw, so the three
/// probabilities must sum to at most 1.
struct KindFaults {
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  /// Delay faults hold the message for uniform_int(delay_min_polls,
  /// delay_max_polls) drain visits of the destination rank.
  std::uint32_t delay_min_polls = 1;
  std::uint32_t delay_max_polls = 16;

  [[nodiscard]] bool active() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0;
  }
};

/// A transient stall: `rank` refuses to drain for polls in
/// [from_poll, until_poll). Bounded by construction, so quiescence always
/// outlives it.
struct StallWindow {
  RankId rank = invalid_rank;
  std::uint64_t from_poll = 0;
  std::uint64_t until_poll = 0;
};

struct FaultConfig {
  std::string name = "none";
  std::array<KindFaults, rt::num_message_kinds> kinds{};
  /// Straggler pattern: every `straggler_stride`-th rank (ranks r with
  /// r % stride == stride - 1) only drains on one poll in
  /// `straggler_period`, modeling a rank whose scheduler runs slow.
  /// 0 disables.
  RankId straggler_stride = 0;
  std::uint32_t straggler_period = 4;
  /// Transient stalls (see StallWindow).
  std::vector<StallWindow> stalls;
  /// Mid-epoch crash: `crash_rank` stops processing permanently once its
  /// drain-visit counter reaches `crash_at_poll`; its queued and future
  /// messages are purged/dropped. invalid_rank disables.
  RankId crash_rank = invalid_rank;
  std::uint64_t crash_at_poll = 0;

  [[nodiscard]] bool message_faults_active() const {
    for (KindFaults const& k : kinds) {
      if (k.active()) {
        return true;
      }
    }
    return false;
  }

  /// Set identical message faults on the three protocol kinds the
  /// hardened paths cover (gossip, transfer, migration).
  FaultConfig& fault_protocol_kinds(KindFaults const& faults);

  // --- Canonical profiles (the chaos matrix's columns). ---
  [[nodiscard]] static FaultConfig none();
  /// 5% of protocol messages vanish.
  [[nodiscard]] static FaultConfig drops();
  /// 20% of protocol messages are held back 1..16 destination polls.
  [[nodiscard]] static FaultConfig delays();
  /// 5% of protocol messages are delivered twice.
  [[nodiscard]] static FaultConfig duplicates();
  /// Every 4th rank drains only one poll in four.
  [[nodiscard]] static FaultConfig stragglers();
  /// Rank 1 crashes once its drain counter reaches 512, plus mild drops
  /// so the crash is not the only fault in play.
  [[nodiscard]] static FaultConfig crash();
  /// Everything at once: drops + duplicates + delays + stragglers.
  [[nodiscard]] static FaultConfig chaos();

  /// Look a canonical profile up by name; throws std::invalid_argument
  /// for unknown names.
  [[nodiscard]] static FaultConfig profile(std::string_view name);
  [[nodiscard]] static std::vector<std::string_view> profile_names();
};

} // namespace tlb::fault
