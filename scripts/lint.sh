#!/usr/bin/env bash
# Static lint gate, two layers:
#
#   1. clang-tidy (config in .clang-tidy) over the library sources against
#      a compile_commands.json. Degrades gracefully — skips with a notice —
#      when clang-tidy is not installed (e.g. the gcc-only dev container);
#      CI installs clang-tidy and enforces it.
#   2. tlb_lint (tools/tlb_lint), the in-tree analyzer for project rules
#      clang-tidy cannot express (determinism, locking discipline, SBO
#      hygiene). It has no external dependency, so it ALWAYS runs — a
#      missing clang-tidy never waives it.
#
# Usage:
#   scripts/lint.sh [build-dir]
#
# The build dir must have been configured by CMake (any options); the
# top-level CMakeLists.txt always exports compile_commands.json. If the
# build dir is missing, a lint-only tree is configured at build-lint/.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  BUILD_DIR=build-lint
  echo "lint.sh: no configured build dir; configuring ${BUILD_DIR}/" >&2
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTLB_BUILD_BENCH=OFF -DTLB_BUILD_EXAMPLES=OFF >/dev/null
fi

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      TIDY="${candidate}"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "lint.sh: clang-tidy not found; skipping tidy layer (install" \
       "clang-tidy or set CLANG_TIDY to enforce it)" >&2
else
  # Library sources are the gate; tests/bench/examples are covered by
  # -Wall -Wextra -Werror in CI instead (gtest/benchmark macros trip too
  # many tidy checks to keep the signal clean).
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  echo "lint.sh: ${TIDY} over ${#sources[@]} sources (db: ${BUILD_DIR})" >&2
  "${TIDY}" -p "${BUILD_DIR}" --quiet "${sources[@]}"
  echo "lint.sh: clang-tidy clean" >&2
fi

echo "lint.sh: building tlb_lint" >&2
cmake --build "${BUILD_DIR}" --target tlb_lint -- -j "$(nproc)" >/dev/null
"${BUILD_DIR}/tools/tlb_lint/tlb_lint" --root . src
echo "lint.sh: tlb_lint clean" >&2
