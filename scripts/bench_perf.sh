#!/usr/bin/env bash
# Message-plane perf snapshot: runs the substrate microbenches
# (micro_runtime, micro_gossip) and the end-to-end fig2_overall harness,
# and folds all three result sets into one BENCH_message_plane.json so CI
# can archive a perf trajectory point per commit. Smoke-sized by default
# (CI runners are noisy; the trajectory tracks shape, not absolutes) —
# pass TLB_BENCH_FULL=1 for the paper-scale fig2 configuration.
#
# Usage:
#   scripts/bench_perf.sh [build-dir] [out-json]   # defaults: build,
#                                                  # BENCH_message_plane.json
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_message_plane.json}"

if [[ ! -x "${BUILD_DIR}/bench/micro_runtime" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
    -DTLB_BUILD_BENCH=ON
  cmake --build "${BUILD_DIR}" -j "$(nproc)" \
    --target micro_runtime micro_gossip fig2_overall
fi

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

# Substrate microbenches (google-benchmark JSON). The throughput filter
# covers the sequential 256/1024/4096-rank sweep and the 1-8 worker
# threaded scaling, both of which also report the SBO heap-fallback
# counter — a nonzero value there is a perf regression by definition.
"${BUILD_DIR}/bench/micro_runtime" \
  --benchmark_filter='BM_MessageThroughput' \
  --benchmark_format=json >"${TMP}/micro_runtime.json"
"${BUILD_DIR}/bench/micro_gossip" \
  --benchmark_format=json >"${TMP}/micro_gossip.json"

# End-to-end harness (paper Fig. 2). Smoke scale keeps the CI job in
# seconds; the full run reproduces the published table.
if [[ "${TLB_BENCH_FULL:-0}" == "1" ]]; then
  "${BUILD_DIR}/bench/fig2_overall" --json="${TMP}/fig2_overall.json" \
    >/dev/null
else
  "${BUILD_DIR}/bench/fig2_overall" --steps=40 --ranks-x=4 --ranks-y=4 \
    --json="${TMP}/fig2_overall.json" >/dev/null
fi

python3 - "${TMP}" "${OUT}" <<'PY'
import json
import sys

tmp, out = sys.argv[1], sys.argv[2]
doc = {"bench": "message_plane", "components": {}}
for name in ("micro_runtime", "micro_gossip", "fig2_overall"):
    with open(f"{tmp}/{name}.json", encoding="utf-8") as f:
        doc["components"][name] = json.load(f)
with open(out, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"bench_perf.sh: wrote {out}")
PY
