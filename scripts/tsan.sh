#!/usr/bin/env bash
# ThreadSanitizer gate: build the threaded-runtime test surface with
# -fsanitize=thread and run the runtime + strategy suites, which exercise
# the worker-pool driver across multiple thread counts (the threaded stress
# test sweeps 2/3/4/8 workers; TLB_STRESS_THREADS adds configurations).
#
# Usage:
#   scripts/tsan.sh [build-dir]    # default build-tsan
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTLB_BUILD_BENCH=OFF \
  -DTLB_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target test_runtime test_strategies test_obs test_fault \
  test_policy test_workload

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
"./${BUILD_DIR}/tests/test_runtime"
"./${BUILD_DIR}/tests/test_strategies"
"./${BUILD_DIR}/tests/test_obs"
# The chaos matrix drives the threaded worker-pool driver through drops,
# delays, duplicates, stalls, and a mid-run crash — the racy-est surface.
"./${BUILD_DIR}/tests/test_fault"
# Policy decisions + scenario sims run LB invocations (threaded driver)
# behind the trigger layer; the sweep exercises it across all scenarios.
"./${BUILD_DIR}/tests/test_policy"
"./${BUILD_DIR}/tests/test_workload"
echo "tsan.sh: runtime + strategy + obs + fault + policy + workload suites clean under ThreadSanitizer" >&2
