#!/usr/bin/env bash
# Static race gate: build the concurrent core with Clang's thread-safety
# analysis promoted to an error (-DTLB_THREAD_SAFETY=ON, which adds
# -Wthread-safety -Werror=thread-safety). Unlike the TSan gate, which only
# catches races the scheduler happens to exercise, this checks every
# lock-discipline violation the TLB_CAPABILITY/TLB_GUARDED_BY annotations
# can express — on every path, at compile time.
#
# Usage:
#   scripts/race_gate.sh [build-dir]    # default build-race
#
# Requires a Clang compiler (the analysis does not exist in GCC; the
# annotation macros expand to nothing there). Degrades gracefully — exits
# 0 with a notice — when no clang++ is installed, so the script is safe to
# call unconditionally; CI installs clang and enforces the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

CXX="${RACE_GATE_CXX:-}"
if [[ -z "${CXX}" ]]; then
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                   clang++-15 clang++-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CXX="${candidate}"
      break
    fi
  done
fi
if [[ -z "${CXX}" ]]; then
  echo "race_gate.sh: clang++ not found; skipping thread-safety gate" \
       "(install clang or set RACE_GATE_CXX to enforce it)" >&2
  exit 0
fi

BUILD_DIR="${1:-build-race}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_COMPILER="${CXX}" \
  -DTLB_THREAD_SAFETY=ON \
  -DTLB_BUILD_TESTS=OFF \
  -DTLB_BUILD_BENCH=OFF \
  -DTLB_BUILD_EXAMPLES=OFF \
  ${CMAKE_CXX_COMPILER_LAUNCHER:+-DCMAKE_CXX_COMPILER_LAUNCHER="${CMAKE_CXX_COMPILER_LAUNCHER}"}

# The gate covers the whole concurrent core: support (SpinLock, auditor),
# runtime (mailboxes, coalescer), obs (registry, tracer), fault. The other
# libraries ride along so an annotated API misused anywhere still fails.
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target tlb_support tlb_runtime tlb_obs tlb_fault tlb_lb tlb_lbaf tlb_pic

echo "race_gate.sh: ${CXX} -Werror=thread-safety clean over src/" >&2
