/// \file quickstart.cpp
/// Quickstart: balance a synthetic overloaded placement with TemperedLB.
///
/// Demonstrates the minimal public-API path:
///   1. build a Runtime (simulated ranks),
///   2. describe per-rank task loads as a StrategyInput,
///   3. run a Strategy and inspect the proposed migrations.
///
/// Usage: quickstart [--ranks=32] [--tasks=200] [--strategy=tempered]

#include <iostream>

#include "lb/strategy/strategy.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const ranks = static_cast<RankId>(opts.get_int("ranks", 32));
  auto const tasks = static_cast<std::size_t>(opts.get_int("tasks", 200));
  auto const name = opts.get_string("strategy", "tempered");

  // A deliberately bad placement: every task starts on rank 0.
  lb::StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{42};
  for (std::size_t i = 0; i < tasks; ++i) {
    input.tasks[0].push_back(
        {static_cast<TaskId>(i), rng.uniform(0.1, 2.0)});
  }
  double const before = imbalance(input.rank_loads());

  // The runtime simulates the distributed job the strategy runs over.
  rt::RuntimeConfig rt_config;
  rt_config.num_ranks = ranks;
  rt::Runtime runtime{rt_config};

  auto strategy = lb::make_strategy(name);
  auto params = lb::LbParams::tempered();
  params.rounds = 6;
  auto const result = strategy->balance(runtime, input, params);

  std::cout << "strategy:            " << strategy->name() << "\n"
            << "ranks:               " << ranks << "\n"
            << "tasks:               " << tasks << "\n"
            << "imbalance before:    " << before << "\n"
            << "imbalance after:     " << result.achieved_imbalance << "\n"
            << "migrations proposed: " << result.migrations.size() << "\n"
            << "protocol messages:   " << result.cost.lb_messages << "\n"
            << "protocol bytes:      " << result.cost.lb_bytes << "\n";

  // Show a few proposed moves.
  std::cout << "\nfirst migrations (task: from -> to, load):\n";
  for (std::size_t i = 0; i < result.migrations.size() && i < 5; ++i) {
    auto const& m = result.migrations[i];
    std::cout << "  task " << m.task << ": " << m.from << " -> " << m.to
              << "  (" << m.load << ")\n";
  }
  return 0;
}
