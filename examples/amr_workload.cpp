/// \file amr_workload.cpp
/// An adaptive-mesh-refinement-motivated scenario (one of the paper's
/// introductory workload classes): mesh patches are tasks whose loads
/// evolve as a refinement front sweeps across the domain — patches near
/// the front refine (load multiplies), patches behind it coarsen. The
/// example runs the phase loop of an AMT application, re-balancing every
/// few phases, and compares against never balancing.
///
/// Usage: amr_workload [--ranks=64] [--patches-per-rank=16] [--phases=60]
///                     [--strategy=tempered] [--lb-period=3]

#include <cmath>
#include <iostream>

#include "lb/strategy/strategy.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace tlb;

/// The evolving AMR workload: patch i sits at coordinate i/(N-1) in a 1-D
/// domain; a refinement front at position front(t) multiplies the load of
/// nearby patches.
class AmrModel {
public:
  AmrModel(std::size_t patches, std::uint64_t seed) : base_(patches) {
    Rng rng{seed};
    for (double& b : base_) {
      b = rng.uniform(0.5, 1.5); // resting (coarse) load per patch
    }
  }

  [[nodiscard]] std::size_t patches() const { return base_.size(); }

  /// Load of patch i at phase t.
  [[nodiscard]] double load(std::size_t i, int phase, int phases) const {
    double const x =
        static_cast<double>(i) / static_cast<double>(base_.size() - 1);
    double const front =
        static_cast<double>(phase) / static_cast<double>(phases);
    double const dist = std::abs(x - front);
    // Refinement multiplies load by up to 16x within the front band.
    double const boost = 15.0 * std::exp(-dist * dist / (2.0 * 0.1 * 0.1));
    return base_[i] * (1.0 + boost);
  }

private:
  std::vector<double> base_;
};

} // namespace

int main(int argc, char** argv) {
  auto const opts = Options::parse(argc, argv);
  auto const ranks = static_cast<RankId>(opts.get_int("ranks", 64));
  auto const per_rank =
      static_cast<std::size_t>(opts.get_int("patches-per-rank", 16));
  auto const phases = static_cast<int>(opts.get_int("phases", 60));
  auto const lb_period = static_cast<int>(opts.get_int("lb-period", 3));
  auto const name = opts.get_string("strategy", "tempered");

  std::size_t const patches = static_cast<std::size_t>(ranks) * per_rank;
  AmrModel const model{patches, 17};

  // Block-decomposed initial placement: patch i on rank i / per_rank,
  // the natural SPMD layout that concentrates the refinement front.
  std::vector<RankId> placement(patches);
  for (std::size_t i = 0; i < patches; ++i) {
    placement[i] = static_cast<RankId>(i / per_rank);
  }
  auto const static_placement = placement;

  rt::RuntimeConfig rt_config;
  rt_config.num_ranks = ranks;
  rt::Runtime runtime{rt_config};
  auto strategy = lb::make_strategy(name);
  auto params = lb::LbParams::tempered();
  params.rounds = 6;
  params.num_trials = 3;
  params.num_iterations = 4;

  auto loads_for = [&](std::vector<RankId> const& where, int phase) {
    std::vector<LoadType> loads(static_cast<std::size_t>(ranks), 0.0);
    for (std::size_t i = 0; i < patches; ++i) {
      loads[static_cast<std::size_t>(where[i])] +=
          model.load(i, phase, phases);
    }
    return loads;
  };

  Table table{{"phase", "I static", "I balanced", "max static",
               "max balanced", "migrations"}};
  double static_total = 0.0;
  double balanced_total = 0.0;
  std::size_t total_migrations = 0;
  for (int phase = 0; phase < phases; ++phase) {
    // Run the LB on the *previous* phase's measured loads (the principle
    // of persistence), then execute this phase on the updated placement.
    if (phase > 0 && phase % lb_period == 0) {
      lb::StrategyInput input;
      input.tasks.resize(static_cast<std::size_t>(ranks));
      for (std::size_t i = 0; i < patches; ++i) {
        input.tasks[static_cast<std::size_t>(placement[i])].push_back(
            {static_cast<TaskId>(i), model.load(i, phase - 1, phases)});
      }
      auto const result = strategy->balance(runtime, input, params);
      for (Migration const& m : result.migrations) {
        placement[static_cast<std::size_t>(m.task)] = m.to;
      }
      total_migrations += result.migrations.size();
    }

    auto const static_loads = loads_for(static_placement, phase);
    auto const balanced_loads = loads_for(placement, phase);
    static_total += summarize(static_loads).max;
    balanced_total += summarize(balanced_loads).max;
    if (phase % std::max(1, phases / 12) == 0) {
      table.begin_row()
          .add_cell(phase)
          .add_cell(imbalance(static_loads), 2)
          .add_cell(imbalance(balanced_loads), 2)
          .add_cell(summarize(static_loads).max, 1)
          .add_cell(summarize(balanced_loads).max, 1)
          .add_cell(total_migrations);
    }
  }

  std::cout << "AMR refinement-front scenario: " << ranks << " ranks, "
            << patches << " patches, strategy=" << name << "\n\n";
  table.print(std::cout);
  std::cout << "\ncritical-path load (sum of per-phase max):\n"
            << "  static placement: " << Table::fmt(static_total, 1) << "\n"
            << "  with balancing:   " << Table::fmt(balanced_total, 1)
            << "  (" << Table::fmt(static_total / balanced_total, 2)
            << "x speedup)\n";
  return 0;
}
