/// \file runtime_tour.cpp
/// A tour of the AMT runtime substrate on its own: active messages,
/// quiescence, tree collectives, Mattern termination detection, and
/// object migration — the primitives every load-balancing strategy in
/// this library is built from.
///
/// Usage: runtime_tour [--ranks=16] [--threads=1]

#include <atomic>
#include <functional>
#include <iostream>

#include "runtime/collectives.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "runtime/termination.hpp"
#include "support/config.hpp"

namespace {

/// A tiny migratable payload for the migration demo.
class Token final : public tlb::rt::Migratable {
public:
  explicit Token(int value) : value_{value} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return 64; }
  [[nodiscard]] int value() const { return value_; }

private:
  int value_;
};

} // namespace

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  rt::RuntimeConfig cfg;
  cfg.num_ranks = static_cast<RankId>(opts.get_int("ranks", 16));
  cfg.num_threads = static_cast<int>(opts.get_int("threads", 1));
  rt::Runtime runtime{cfg};

  // 1. Active messages: a ring traversal, each hop an asynchronous send.
  std::atomic<int> hops{0};
  std::function<void(rt::RankContext&)> hop =
      [&hops, &hop](rt::RankContext& ctx) {
        ++hops;
        if (ctx.rank() + 1 < ctx.num_ranks()) {
          ctx.send(ctx.rank() + 1, 8, hop);
        }
      };
  runtime.post(0, hop);
  runtime.run_until_quiescent();
  std::cout << "1. ring traversal visited " << hops.load() << " of "
            << cfg.num_ranks << " ranks\n";

  // 2. Collectives: allreduce of per-rank loads into global stats.
  std::vector<LoadType> loads;
  for (RankId r = 0; r < cfg.num_ranks; ++r) {
    loads.push_back(1.0 + static_cast<double>(r));
  }
  auto const stat = rt::allreduce_loads(runtime, loads)[0];
  std::cout << "2. allreduce: max=" << stat.max << " avg=" << stat.average()
            << " over " << stat.count << " ranks ("
            << runtime.stats().messages << " messages so far)\n";

  // 3. Termination detection: certify a random fan-out cascade with
  // Mattern counting waves made of real control messages.
  rt::TerminationDetector detector{runtime};
  std::atomic<int> cascade{0};
  std::function<void(rt::RankContext&, int)> spawn =
      [&](rt::RankContext& ctx, int depth) {
        ++cascade;
        if (depth == 0) {
          return;
        }
        for (int i = 0; i < 2; ++i) {
          auto const dest = static_cast<RankId>(ctx.rng().uniform_below(
              static_cast<std::uint64_t>(ctx.num_ranks())));
          detector.send(ctx, dest, 16, [&spawn, depth](rt::RankContext& c) {
            spawn(c, depth - 1);
          });
        }
      };
  detector.post(0, [&spawn](rt::RankContext& ctx) { spawn(ctx, 6); });
  detector.start();
  runtime.run_until_quiescent();
  std::cout << "3. termination detection: certified "
            << detector.certified_count() << " messages in "
            << detector.waves() << " waves (handlers ran: "
            << cascade.load() << ")\n";

  // 4. Migration: move an object around and watch the directory follow.
  rt::ObjectStore store{cfg.num_ranks};
  store.create(0, /*id=*/7, std::make_unique<Token>(42));
  (void)store.migrate(runtime, {Migration{7, 0, cfg.num_ranks - 1, 1.0}});
  auto const* token = dynamic_cast<Token const*>(
      store.find(cfg.num_ranks - 1, 7));
  std::cout << "4. migration: task 7 now on rank " << store.owner(7)
            << ", payload value " << (token != nullptr ? token->value() : -1)
            << ", " << store.migration_bytes() << " bytes moved\n";
  return 0;
}
