#pragma once

/// \file telemetry_out.hpp
/// Shared --telemetry output plumbing for the examples. Every demo that
/// dumps telemetry accepts the same flags:
///
///   --out-prefix=P      default path stem (default: the demo's name)
///   --trace-out=F       Chrome trace        (default P.trace.json)
///   --metrics-out=F     registry snapshot   (default P.metrics.json)
///   --timeline-out=F    phase timeline      (default P.timeline.json)
///   --causal-out=F      causal delivery log (default P.causal.json)
///   --lb-report-out=F   LB introspection    (default P.lb_report.json)
///
/// Writers report open failures (with errno detail) on stderr and return
/// false instead of throwing out of main.

#include <cstdio>
#include <exception>
#include <functional>
#include <iostream>
#include <string>

#include "obs/json.hpp"
#include "support/config.hpp"

namespace tlb::examples {

/// Resolved output paths for one demo run.
class TelemetryOut {
public:
  TelemetryOut(Options const& opts, std::string default_prefix)
      : prefix_{opts.get_string("out-prefix", default_prefix)},
        trace_{opts.get_string("trace-out", prefix_ + ".trace.json")},
        metrics_{opts.get_string("metrics-out", prefix_ + ".metrics.json")},
        timeline_{
            opts.get_string("timeline-out", prefix_ + ".timeline.json")},
        causal_{opts.get_string("causal-out", prefix_ + ".causal.json")},
        lb_report_{
            opts.get_string("lb-report-out", prefix_ + ".lb_report.json")} {}

  [[nodiscard]] std::string const& trace_path() const { return trace_; }
  [[nodiscard]] std::string const& metrics_path() const { return metrics_; }
  [[nodiscard]] std::string const& timeline_path() const {
    return timeline_;
  }
  [[nodiscard]] std::string const& causal_path() const { return causal_; }
  [[nodiscard]] std::string const& lb_report_path() const {
    return lb_report_;
  }

  /// Open `path` and run `emit` on the stream; on failure print the
  /// error (open_output_file includes path + errno detail) and return
  /// false. Prints "wrote <path>" on success.
  static bool write(std::string const& path,
                    std::function<void(std::ostream&)> const& emit) {
    try {
      auto os = obs::open_output_file(path);
      emit(os);
    } catch (std::exception const& e) {
      std::cerr << "telemetry output error: " << e.what() << "\n";
      return false;
    }
    std::cout << "wrote " << path << "\n";
    return true;
  }

private:
  std::string prefix_;
  std::string trace_;
  std::string metrics_;
  std::string timeline_;
  std::string causal_;
  std::string lb_report_;
};

} // namespace tlb::examples
