/// \file pic_bdot.cpp
/// The EMPIRE-surrogate B-Dot simulation (§VI): a particle-in-cell
/// mini-app whose moving, growing injection region produces time-varying
/// imbalance, balanced every `lb-period` steps by the chosen strategy.
///
/// Usage examples:
///   pic_bdot                                   # TemperedLB, 64 ranks
///   pic_bdot --strategy=none --mode=spmd       # pure-MPI baseline
///   pic_bdot --strategy=greedy --steps=300
///   pic_bdot --ranks-x=20 --ranks-y=20         # paper's 400-rank layout
///   pic_bdot --policy=costbenefit              # adaptive LB invocation
///   pic_bdot --policy=threshold-0.5            # reactive λ trigger

#include <iostream>

#include "obs/causal.hpp"
#include "obs/json.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "pic/app.hpp"
#include "pic/trace.hpp"
#include "support/config.hpp"
#include "support/table.hpp"
#include "telemetry_out.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);

  pic::PicConfig cfg;
  cfg.mesh.ranks_x = static_cast<int>(opts.get_int("ranks-x", 8));
  cfg.mesh.ranks_y = static_cast<int>(opts.get_int("ranks-y", 8));
  cfg.steps = static_cast<int>(opts.get_int("steps", 400));
  cfg.bdot.total_steps = cfg.steps;
  cfg.lb_period = static_cast<int>(opts.get_int("lb-period", 100));
  cfg.strategy = opts.get_string("strategy", "tempered");
  cfg.mode = opts.get_string("mode", "amt") == "spmd"
                 ? pic::ExecutionMode::spmd
                 : pic::ExecutionMode::amt;
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 0xE3));
  cfg.runtime_threads = static_cast<int>(opts.get_int("threads", 1));
  cfg.lb_params.rounds = static_cast<int>(opts.get_int("rounds", 5));
  // --policy replaces the periodic schedule with an adaptive trigger
  // policy; every step's invoke-or-skip decision lands in the timeline.
  cfg.policy = opts.get_string("policy", "");

  // --telemetry: record spans/metrics/LB introspection over the whole run
  // and dump them as machine-readable JSON at the end.
  bool const telemetry = opts.get_bool("telemetry", false);
  if (telemetry) {
    obs::set_enabled(true);
    obs::Tracer::instance().clear();
    obs::registry().clear();
    obs::CausalLog::instance().clear();
    obs::PhaseTimeline::instance().clear();
  }

  pic::PicApp app{cfg};
  std::cout << "B-Dot surrogate: "
            << cfg.mesh.ranks_x * cfg.mesh.ranks_y << " ranks x "
            << cfg.mesh.colors_x * cfg.mesh.colors_y << " colors, "
            << cfg.steps << " steps, strategy="
            << (cfg.mode == pic::ExecutionMode::spmd ? "spmd"
                                                     : cfg.strategy)
            << "\n\n";
  auto const result = app.run();

  Table series{{"step", "t_step (s)", "imbalance", "particles",
                "migrations"}};
  int const sample = std::max(1, cfg.steps / 16);
  for (auto const& m : result.steps) {
    if (m.step % sample == 0) {
      series.begin_row()
          .add_cell(m.step)
          .add_cell(m.t_step, 4)
          .add_cell(m.imbalance, 2)
          .add_cell(m.total_particles)
          .add_cell(m.migrations);
    }
  }
  series.print(std::cout);

  std::size_t lb_invocations = 0;
  for (auto const& m : result.steps) {
    if (m.t_lb > 0.0) {
      ++lb_invocations;
    }
  }
  std::cout << "\ntotals (simulated seconds):\n"
            << "  LB invocations:    " << lb_invocations
            << (cfg.policy.empty() ? " (periodic schedule)"
                                   : " (policy " + cfg.policy + ")")
            << "\n"
            << "  particle update:   " << result.totals.t_particle << "\n"
            << "  non-particle:      " << result.totals.t_nonparticle << "\n"
            << "  load balancing:    " << result.totals.t_lb << "\n"
            << "  total:             " << result.totals.t_total << "\n"
            << "  migrations:        " << result.totals.migrations << "\n"
            << "  migration bytes:   " << result.totals.migration_bytes
            << "\n";

  if (auto const trace = opts.get("trace")) {
    pic::write_trace_csv(*trace, result);
    std::cout << "\nper-step trace written to " << *trace << "\n";
  }

  if (telemetry) {
    examples::TelemetryOut out{opts, "pic_bdot"};
    app.runtime().publish_metrics(obs::registry());
    std::cout << "\n";
    bool ok = true;
    ok &= examples::TelemetryOut::write(
        out.trace_path(),
        [](std::ostream& os) {
          obs::Tracer::instance().write_chrome_trace(os);
        });
    ok &= examples::TelemetryOut::write(
        out.metrics_path(),
        [](std::ostream& os) { obs::registry().write_json(os); });
    ok &= examples::TelemetryOut::write(
        out.timeline_path(), [](std::ostream& os) {
          obs::PhaseTimeline::instance().write_json(os);
        });
    ok &= examples::TelemetryOut::write(
        out.causal_path(),
        [](std::ostream& os) { obs::CausalLog::instance().write_json(os); });
    if (auto const* manager = app.lb_manager()) {
      ok &= examples::TelemetryOut::write(
          out.lb_report_path(), [&](std::ostream& os) {
            manager->write_introspection_json(os);
          });
    }
    if (!ok) {
      return 1;
    }
  }
  return 0;
}
