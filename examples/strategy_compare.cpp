/// \file strategy_compare.cpp
/// Compare every registered strategy (plus the centralized LPT reference)
/// on a family of synthetic workloads using the sequential analysis
/// framework and the distributed runtime — the kind of study LBAF was
/// built for (§V-B).
///
/// Usage: strategy_compare [--ranks=256] [--tasks=2000] [--seed=7]

#include <iostream>

#include "lb/strategy/strategy.hpp"
#include "lbaf/assignment.hpp"
#include "lbaf/greedy_ref.hpp"
#include "lbaf/workload.hpp"
#include "support/config.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace tlb;

lb::StrategyInput to_input(lbaf::Workload const& workload) {
  lb::StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(workload.num_ranks));
  for (std::size_t i = 0; i < workload.tasks.size(); ++i) {
    input.tasks[static_cast<std::size_t>(workload.initial_rank[i])]
        .push_back(workload.tasks[i]);
  }
  return input;
}

} // namespace

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const ranks = static_cast<RankId>(opts.get_int("ranks", 256));
  auto const tasks = static_cast<std::size_t>(opts.get_int("tasks", 2000));
  auto const seed = static_cast<std::uint64_t>(opts.get_int("seed", 7));

  struct Case {
    std::string name;
    lbaf::Workload workload;
  };
  std::vector<Case> const cases{
      {"clustered (16 of P loaded)",
       lbaf::make_clustered(ranks, std::min<RankId>(16, ranks), tasks,
                            lbaf::LoadDistribution::gamma, 1.0, seed)},
      {"bimodal (§V-B regime)",
       lbaf::make_bimodal(ranks, std::min<RankId>(16, ranks), tasks,
                          lbaf::BimodalSpec{}, seed)},
      {"gradient (AMR-like)",
       lbaf::make_gradient(ranks, tasks, 4.0,
                           lbaf::LoadDistribution::lognormal, 1.0, seed)},
      {"scattered (mild noise)",
       lbaf::make_scattered(ranks, tasks, lbaf::LoadDistribution::uniform,
                            1.0, seed)},
  };

  auto params = lb::LbParams::tempered();
  params.rounds = 8;
  params.num_trials = 4;
  params.num_iterations = 6;

  for (auto const& c : cases) {
    auto const input = to_input(c.workload);
    double const before = imbalance(input.rank_loads());
    lbaf::Assignment const initial{c.workload};
    double const lpt_floor = lbaf::greedy_imbalance(initial);

    std::cout << "== " << c.name << "  (initial I = " << Table::fmt(before, 2)
              << ", LPT reference I = " << Table::fmt(lpt_floor, 3)
              << ") ==\n";
    Table table{{"strategy", "I after", "migrations", "LB messages",
                 "LB bytes"}};
    for (auto const name : lb::strategy_names()) {
      rt::RuntimeConfig rt_config;
      rt_config.num_ranks = ranks;
      rt::Runtime runtime{rt_config};
      auto strategy = lb::make_strategy(name);
      auto const result = strategy->balance(runtime, input, params);
      table.begin_row()
          .add_cell(name)
          .add_cell(result.achieved_imbalance, 3)
          .add_cell(result.migrations.size())
          .add_cell(result.cost.lb_messages)
          .add_cell(result.cost.lb_bytes);
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
