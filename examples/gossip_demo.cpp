/// \file gossip_demo.cpp
/// Visualize the inform stage (Algorithm 1): how knowledge of underloaded
/// ranks spreads with each gossip round, and what that costs in messages
/// and bytes — the §IV-B claim that log_f(P) rounds reach global
/// knowledge with high probability.
///
/// Usage: gossip_demo [--ranks=512] [--fanout=6] [--max-rounds=8]

#include <cmath>
#include <iostream>

#include "lbaf/gossip_sim.hpp"
#include "support/config.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const ranks = static_cast<int>(opts.get_int("ranks", 512));
  auto const fanout = static_cast<int>(opts.get_int("fanout", 6));
  auto const max_rounds = static_cast<int>(opts.get_int("max-rounds", 8));
  auto const seed = static_cast<std::uint64_t>(opts.get_int("seed", 3));

  // Half the ranks underloaded, half overloaded.
  std::vector<LoadType> loads(static_cast<std::size_t>(ranks), 0.0);
  for (int i = 0; i < ranks; i += 2) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  double const underloaded = ranks / 2.0;

  std::cout << "gossip information propagation: P=" << ranks
            << " f=" << fanout << " (underloaded ranks: "
            << static_cast<int>(underloaded) << ")\n"
            << "log_f(P) = "
            << Table::fmt(std::log(static_cast<double>(ranks)) /
                              std::log(static_cast<double>(fanout)),
                          2)
            << " rounds predicted for global knowledge\n\n";

  Table table{{"rounds k", "mean coverage", "min coverage", "messages",
               "knowledge bytes"}};
  for (int k = 1; k <= max_rounds; ++k) {
    Rng rng{seed};
    lbaf::GossipStats stats;
    auto const knowledge = lbaf::run_gossip(loads, 1.0, fanout, k, rng,
                                            &stats);
    // Coverage from the perspective of overloaded ranks (the consumers of
    // this knowledge in the transfer stage).
    RunningStats coverage;
    for (int i = 0; i < ranks; i += 2) {
      coverage.add(
          static_cast<double>(knowledge[static_cast<std::size_t>(i)].size()) /
          underloaded);
    }
    table.begin_row()
        .add_cell(k)
        .add_cell(coverage.mean(), 3)
        .add_cell(coverage.min(), 3)
        .add_cell(stats.messages)
        .add_cell(stats.bytes);
  }
  table.print(std::cout);
  std::cout << "\ncoverage -> 1.0 once k exceeds log_f(P); traffic grows "
               "~P*f per extra round\n";
  return 0;
}
