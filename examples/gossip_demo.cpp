/// \file gossip_demo.cpp
/// Visualize the inform stage (Algorithm 1): how knowledge of underloaded
/// ranks spreads with each gossip round, and what that costs in messages
/// and bytes — the §IV-B claim that log_f(P) rounds reach global
/// knowledge with high probability.
///
/// Usage: gossip_demo [--ranks=512] [--fanout=6] [--max-rounds=8]
///
/// With --telemetry the demo instead runs a sequence of runtime-backed
/// TemperedLB invocations (LbManager + ObjectStore) over a bimodal
/// workload whose hot ranks rotate between phases — a miniature
/// time-varying imbalance story — with the telemetry layer enabled, and
/// writes five machine-readable artifacts:
///
///   <prefix>.trace.json      Chrome trace (load in Perfetto / about:tracing)
///   <prefix>.metrics.json    metrics registry snapshot
///   <prefix>.lb_report.json  per-round / per-trial LB introspection
///   <prefix>.timeline.json   per-phase imbalance/migration time series
///   <prefix>.causal.json     causal delivery log (tlb_report's input)
///
/// Usage: gossip_demo --telemetry [--ranks=64] [--phases=3] [--trials=2]
///                    [--iters=3] [--out-prefix=gossip_demo]
///                    [--trace-out=F --metrics-out=F --timeline-out=F
///                     --causal-out=F --lb-report-out=F]
/// (output flags shared with pic_bdot; see telemetry_out.hpp)
///
/// With --scenario=<hotspot|periodic|bursty|ramp> the telemetry run is
/// driven by a workload-library scenario over a persistent task
/// population instead of the rotating bimodal workload, and --policy
/// (default "always") picks the trigger policy deciding invoke-or-skip
/// each phase — the decisions land in the timeline's `lb` column.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>

#include "lb/strategy/lb_manager.hpp"
#include "lbaf/gossip_sim.hpp"
#include "lbaf/workload.hpp"
#include "obs/causal.hpp"
#include "obs/json.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "policy/trigger_policy.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "telemetry_out.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace tlb;

/// Minimal migratable payload so migrations move real bytes.
class Chunk final : public rt::Migratable {
public:
  explicit Chunk(std::size_t bytes) : bytes_{bytes} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return bytes_; }

private:
  std::size_t bytes_;
};

/// The --telemetry path: a multi-phase instrumented TemperedLB run whose
/// hot ranks rotate between phases (time-varying imbalance in miniature).
int run_telemetry_demo(Options const& opts) {
  auto const ranks = static_cast<RankId>(opts.get_int("ranks", 64));
  auto const loaded =
      static_cast<RankId>(opts.get_int("loaded", std::max(1, ranks / 8)));
  auto const tasks =
      static_cast<std::size_t>(opts.get_int("tasks", 16 * ranks));
  auto const seed = static_cast<std::uint64_t>(opts.get_int("seed", 3));
  auto const phases = static_cast<int>(opts.get_int("phases", 3));
  examples::TelemetryOut out{opts, "gossip_demo"};

  obs::set_enabled(true);
  obs::Tracer::instance().clear();
  obs::registry().clear();
  obs::CausalLog::instance().clear();
  obs::PhaseTimeline::instance().clear();

  auto params = lb::LbParams::tempered();
  params.num_trials = static_cast<int>(opts.get_int("trials", 2));
  params.num_iterations = static_cast<int>(opts.get_int("iters", 3));
  params.fanout = static_cast<int>(opts.get_int("fanout", 6));
  params.rounds = static_cast<int>(opts.get_int("rounds", 5));
  params.seed = derive_seed(seed, workload::kLbSeedStreamTag);

  rt::RuntimeConfig rt_config;
  rt_config.num_ranks = ranks;
  rt_config.seed = seed;
  rt::Runtime runtime{rt_config};
  lb::LbManager manager{runtime, "tempered", params};

  auto const scenario_name = opts.get_string("scenario", "");
  std::cout << "telemetry demo: P=" << ranks << " tasks=" << tasks
            << " phases=" << phases << " trials=" << params.num_trials
            << " iters=" << params.num_iterations << "\n";

  if (!scenario_name.empty()) {
    // Scenario mode: a workload-library scenario over a persistent task
    // population, with a trigger policy deciding invoke-or-skip.
    auto const policy_spec = opts.get_string("policy", "always");
    workload::ScenarioSpec spec;
    spec.name = scenario_name;
    spec.num_ranks = ranks;
    spec.phases = static_cast<std::size_t>(std::max(1, phases));
    spec.seed = seed;
    auto const scenario = workload::make_scenario(spec);
    workload::ScenarioWorkload const wl{
        *scenario, std::max<std::size_t>(1, tasks / static_cast<std::size_t>(ranks)),
        seed, 1.0e-3};
    auto policy = policy::make_policy(policy_spec);
    lb::LbCostModel cost_model;
    cost_model.fixed = 4.0e-3;
    rt::ObjectStore store{ranks};
    wl.populate(store, 256);
    for (int p = 0; p < phases; ++p) {
      auto const input = wl.measure(static_cast<std::uint64_t>(p), store);
      auto const outcome =
          manager.invoke_if_beneficial(input, store, *policy, cost_model);
      std::cout << "  phase " << p << " ["
                << (outcome.invoked ? "invoke" : "skip  ") << "] I before = "
                << Table::fmt(outcome.report.imbalance_before, 3)
                << "  I after = "
                << Table::fmt(outcome.report.imbalance_after, 3) << "  ("
                << outcome.decision.reason << ")\n";
    }
  } else {
    // Each phase re-measures the workload with the hot ranks rotated by a
    // stride — the imbalance the previous invocation fixed reappears
    // elsewhere, which is exactly the trajectory the phase timeline (and
    // tlb_report's imbalance-evolution table) is meant to show. Per-phase
    // workload seeds come from the dedicated workload stream.
    Rng const workload_root = Rng{seed}.split(workload::kWorkloadStreamTag);
    auto const stride = std::max<RankId>(1, ranks / std::max(1, phases));
    for (int p = 0; p < phases; ++p) {
      Rng phase_stream =
          workload_root.split(static_cast<std::uint64_t>(p));
      auto const workload =
          lbaf::make_bimodal(ranks, loaded, tasks, lbaf::BimodalSpec{},
                             phase_stream());
      lb::StrategyInput input;
      input.tasks.resize(static_cast<std::size_t>(ranks));
      rt::ObjectStore store{ranks};
      for (std::size_t i = 0; i < workload.tasks.size(); ++i) {
        auto const home = static_cast<RankId>(
            (workload.initial_rank[i] + static_cast<RankId>(p) * stride) %
            ranks);
        input.tasks[static_cast<std::size_t>(home)].push_back(
            workload.tasks[i]);
        store.create(home, workload.tasks[i].id,
                     std::make_unique<Chunk>(256));
      }
      auto const report = manager.invoke(input, store);
      std::cout << "  phase " << p << ": I before = "
                << Table::fmt(report.imbalance_before, 3) << "  I after = "
                << Table::fmt(report.imbalance_after, 3)
                << "  migrations = " << report.cost.migration_count << " ("
                << report.migration_payload_bytes << " bytes)\n";
    }
  }

  runtime.publish_metrics(obs::registry());

  bool ok = true;
  ok &= examples::TelemetryOut::write(out.trace_path(), [](std::ostream& os) {
    obs::Tracer::instance().write_chrome_trace(os);
  });
  ok &= examples::TelemetryOut::write(
      out.metrics_path(),
      [](std::ostream& os) { obs::registry().write_json(os); });
  ok &= examples::TelemetryOut::write(
      out.timeline_path(),
      [](std::ostream& os) { obs::PhaseTimeline::instance().write_json(os); });
  ok &= examples::TelemetryOut::write(
      out.causal_path(),
      [](std::ostream& os) { obs::CausalLog::instance().write_json(os); });
  ok &= examples::TelemetryOut::write(
      out.lb_report_path(),
      [&](std::ostream& os) { manager.write_introspection_json(os); });

  std::cout << "  trace events = " << obs::Tracer::instance().event_count()
            << " (dropped " << obs::Tracer::instance().dropped() << ")"
            << "  causal deliveries = "
            << obs::CausalLog::instance().event_count() << " (dropped "
            << obs::CausalLog::instance().dropped() << ")\n"
            << "render a postmortem with tools/tlb_report, or open the "
               "trace in https://ui.perfetto.dev\n";
  return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  // --scenario implies the telemetry demo: the flag parser ignores unknown
  // options, so requiring --telemetry alongside it would silently run the
  // gossip-coverage demo instead.
  if (opts.get_bool("telemetry", false) ||
      !opts.get_string("scenario", "").empty()) {
    return run_telemetry_demo(opts);
  }
  auto const ranks = static_cast<int>(opts.get_int("ranks", 512));
  auto const fanout = static_cast<int>(opts.get_int("fanout", 6));
  auto const max_rounds = static_cast<int>(opts.get_int("max-rounds", 8));
  auto const seed = static_cast<std::uint64_t>(opts.get_int("seed", 3));

  // Half the ranks underloaded, half overloaded.
  std::vector<LoadType> loads(static_cast<std::size_t>(ranks), 0.0);
  for (int i = 0; i < ranks; i += 2) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  double const underloaded = ranks / 2.0;

  std::cout << "gossip information propagation: P=" << ranks
            << " f=" << fanout << " (underloaded ranks: "
            << static_cast<int>(underloaded) << ")\n"
            << "log_f(P) = "
            << Table::fmt(std::log(static_cast<double>(ranks)) /
                              std::log(static_cast<double>(fanout)),
                          2)
            << " rounds predicted for global knowledge\n\n";

  Table table{{"rounds k", "mean coverage", "min coverage", "messages",
               "knowledge bytes"}};
  for (int k = 1; k <= max_rounds; ++k) {
    Rng rng{seed};
    lbaf::GossipStats stats;
    auto const knowledge = lbaf::run_gossip(loads, 1.0, fanout, k, rng,
                                            &stats);
    // Coverage from the perspective of overloaded ranks (the consumers of
    // this knowledge in the transfer stage).
    RunningStats coverage;
    for (int i = 0; i < ranks; i += 2) {
      coverage.add(
          static_cast<double>(knowledge[static_cast<std::size_t>(i)].size()) /
          underloaded);
    }
    table.begin_row()
        .add_cell(k)
        .add_cell(coverage.mean(), 3)
        .add_cell(coverage.min(), 3)
        .add_cell(stats.messages)
        .add_cell(stats.bytes);
  }
  table.print(std::cout);
  std::cout << "\ncoverage -> 1.0 once k exceeds log_f(P); traffic grows "
               "~P*f per extra round\n";
  return 0;
}
