/// \file micro_strategies.cpp
/// M5 — strategy-cost scaling: wall-clock cost of one balance() call per
/// strategy as rank count grows, with quality and traffic counters. This
/// is the engineering side of §IV's centralized/hierarchical/distributed
/// scalability discussion: GreedyLB's cost concentrates at rank 0, HierLB
/// splits it across leaders, and the gossip schemes pay only O(f*k)
/// messages per rank.

#include <benchmark/benchmark.h>

#include "lb/strategy/strategy.hpp"
#include "support/rng.hpp"

namespace {

using namespace tlb;

lb::StrategyInput clustered_input(RankId ranks) {
  lb::StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{7};
  TaskId id = 0;
  // Tasks on the first 1/8 of ranks, ~24 tasks each (one overdecomposed
  // hot region).
  for (RankId r = 0; r < std::max<RankId>(1, ranks / 8); ++r) {
    for (int i = 0; i < 24; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.3, 1.5)});
    }
  }
  return input;
}

void run_strategy(benchmark::State& state, char const* name) {
  auto const ranks = static_cast<RankId>(state.range(0));
  auto const input = clustered_input(ranks);
  auto params = lb::LbParams::tempered();
  params.rounds = 5;
  params.num_trials = 2;
  params.num_iterations = 3;

  double achieved = 0.0;
  std::size_t messages = 0;
  for (auto _ : state) {
    rt::RuntimeConfig cfg;
    cfg.num_ranks = ranks;
    rt::Runtime rt{cfg};
    auto strategy = lb::make_strategy(name);
    auto const result = strategy->balance(rt, input, params);
    benchmark::DoNotOptimize(result);
    achieved = result.achieved_imbalance;
    messages = result.cost.lb_messages;
  }
  state.counters["achieved_I"] = achieved;
  state.counters["lb_messages"] = static_cast<double>(messages);
}

void BM_Tempered(benchmark::State& state) {
  run_strategy(state, "tempered");
}
void BM_Grapevine(benchmark::State& state) {
  run_strategy(state, "grapevine");
}
void BM_Greedy(benchmark::State& state) { run_strategy(state, "greedy"); }
void BM_Hier(benchmark::State& state) { run_strategy(state, "hier"); }
void BM_Diffusion(benchmark::State& state) {
  run_strategy(state, "diffusion");
}
void BM_Stealing(benchmark::State& state) {
  run_strategy(state, "stealing");
}

BENCHMARK(BM_Tempered)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Grapevine)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Greedy)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hier)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Diffusion)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Stealing)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

} // namespace
