/// \file table_nacks.cpp
/// Ablation of a design decision the paper makes in §V-A: "We do not
/// employ the negative acknowledgements proposed by Menon, et al. [9]...
/// we choose to recompute the CMF [instead]". This bench runs the
/// distributed TemperedLB with and without NACKs, crossed with the CMF
/// refresh policy, on a clustered input — quantifying how much of the
/// NACKs' job the recomputed CMF already does.
///
/// Flags: --ranks --loaded --tasks-per-rank --trials --iters --seed --csv

#include <iostream>

#include "bench_json.hpp"
#include "lb/strategy/gossip_strategy.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const ranks = static_cast<RankId>(opts.get_int("ranks", 256));
  auto const loaded = static_cast<RankId>(opts.get_int("loaded", 8));
  auto const per_rank =
      static_cast<std::size_t>(opts.get_int("tasks-per-rank", 100));
  auto const seed = static_cast<std::uint64_t>(opts.get_int("seed", 5));

  lb::StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{seed};
  TaskId id = 0;
  for (RankId r = 0; r < loaded; ++r) {
    for (std::size_t i = 0; i < per_rank; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.2, 1.8)});
    }
  }
  double const before = imbalance(input.rank_loads());

  std::cout << "# Ablation (§V-A): negative acknowledgements vs CMF "
               "recomputation\n"
            << "# ranks=" << ranks << " initial I=" << Table::fmt(before, 2)
            << "\n";

  struct Case {
    std::string label;
    lb::CmfRefresh refresh;
    bool nacks;
  };
  std::vector<Case> const cases{
      {"recompute, no NACKs (paper)", lb::CmfRefresh::recompute, false},
      {"recompute, NACKs", lb::CmfRefresh::recompute, true},
      {"build-once, no NACKs", lb::CmfRefresh::build_once, false},
      {"build-once, NACKs (Menon-style)", lb::CmfRefresh::build_once, true},
  };

  Table table{{"configuration", "I after", "migrations", "LB messages"}};
  for (auto const& c : cases) {
    rt::RuntimeConfig rt_config;
    rt_config.num_ranks = ranks;
    rt_config.seed = seed;
    rt::Runtime runtime{rt_config};
    lb::GossipStrategy strategy{lb::GossipStrategy::Flavor::tempered};
    auto params = lb::LbParams::tempered();
    params.refresh = c.refresh;
    params.use_nacks = c.nacks;
    params.rounds = static_cast<int>(opts.get_int("rounds", 6));
    params.num_trials = static_cast<int>(opts.get_int("trials", 4));
    params.num_iterations = static_cast<int>(opts.get_int("iters", 6));
    auto const result = strategy.balance(runtime, input, params);
    table.begin_row()
        .add_cell(c.label)
        .add_cell(result.achieved_imbalance, 3)
        .add_cell(result.migrations.size())
        .add_cell(result.cost.lb_messages);
  }
  bench::emit_table(opts, "table_nacks", table);
  std::cout << "# expected shape: NACKs bounce any proposal that would put "
               "the recipient above l_ave, re-imposing the original "
               "criterion's restriction and re-introducing the §V-B stall "
               "on concentrated workloads — the deferred-commit + "
               "recomputed-CMF design achieves coordination without "
               "sacrificing the relaxed objective\n";
  return 0;
}
