/// \file fig2_overall.cpp
/// E4 — Fig. 2: overall performance of the application under the five
/// configurations, as speedups relative to the SPMD (pure-MPI) baseline.
/// Paper shape: AMT-no-LB is ~1.23x *slower*; GrapevineLB reaches only
/// ~1.3x/1.5x (whole app / particle update); Greedy, Hier, and Tempered
/// all land near 1.9x whole-app and ~3x particle-update speedup.
///
/// Flags: --steps --ranks-x --ranks-y --trials --iters --csv ...

#include <iostream>

#include "pic_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const base = bench::make_pic_config(opts);

  std::cout << "# E4 (paper Fig. 2): overall performance vs SPMD "
               "baseline\n"
            << "# ranks=" << base.mesh.ranks_x * base.mesh.ranks_y
            << " colors/rank=" << base.mesh.colors_x * base.mesh.colors_y
            << " steps=" << base.steps << "\n";

  Table table{{"Configuration", "Particle (s)", "Non-particle (s)",
               "Total (s)", "App speedup", "Particle speedup"}};
  double spmd_total = 0.0;
  double spmd_particle = 0.0;
  for (auto const& named : bench::fig2_configs()) {
    auto const result = bench::run_config(base, named);
    if (named.label == "SPMD (no AMT)") {
      spmd_total = result.totals.t_total;
      spmd_particle = result.totals.t_particle;
    }
    table.begin_row()
        .add_cell(named.label)
        .add_cell(result.totals.t_particle, 1)
        .add_cell(result.totals.t_nonparticle, 1)
        .add_cell(result.totals.t_total, 1)
        .add_cell(spmd_total / result.totals.t_total, 2)
        .add_cell(spmd_particle / result.totals.t_particle, 2);
  }
  bench::emit_table(opts, "fig2_overall", table);
  std::cout << "# paper shape: no-LB ~0.8x; GrapevineLB ~1.3x/1.5x; "
               "Greedy/Hier/Tempered ~1.9x app and ~3x particle\n";
  return 0;
}
