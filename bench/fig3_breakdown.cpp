/// \file fig3_breakdown.cpp
/// E5 — Fig. 3: the execution-time breakdown table — non-particle time
/// t_n, particle time t_p, LB + migration time t_lb, and total, per
/// configuration. Paper shape: t_n roughly constant (AMT adds ~8%);
/// t_p carries all the differences; t_lb is two to three orders below the
/// total, slightly larger for TemperedLB (trials x iterations) than for
/// Greedy/Hier.
///
/// Flags: --steps --ranks-x --ranks-y --trials --iters --csv ...

#include <iostream>

#include "pic_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const base = bench::make_pic_config(opts);

  std::cout << "# E5 (paper Fig. 3): execution time breakdown\n"
            << "# ranks=" << base.mesh.ranks_x * base.mesh.ranks_y
            << " steps=" << base.steps << "\n";

  Table table{{"Type", "t_n (s)", "t_p (s)", "t_lb (s)", "t_total (s)",
               "migrations"}};
  for (auto const& named : bench::fig2_configs()) {
    auto const result = bench::run_config(base, named);
    table.begin_row()
        .add_cell(named.label)
        .add_cell(result.totals.t_nonparticle, 1)
        .add_cell(result.totals.t_particle, 1)
        .add_cell(result.totals.t_lb, 2)
        .add_cell(result.totals.t_total, 1)
        .add_cell(result.totals.migrations);
  }
  bench::emit_table(opts, "fig3_breakdown", table);
  std::cout << "# paper row order matches: SPMD 1284/3478/0/4762; "
               "TemperedLB 1416/1118/11/2546\n";
  return 0;
}
