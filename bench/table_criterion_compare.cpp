/// \file table_criterion_compare.cpp
/// E3 — the §V-D side-by-side comparison: imbalance per iteration under
/// the original criterion (line 35) versus the relaxed criterion (line
/// 37) on the identical workload and gossip streams. The paper's columns
/// run 280/280 -> 187/3.34 -> ... -> 182/0.623.
///
/// Flags: --ranks --loaded --tasks --iters --fanout --rounds --threshold
///        --seed --heavy-fraction --csv

#include <iostream>

#include "table_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto setup = bench::make_table_setup(opts);

  auto original = setup.params;
  original.criterion = lb::CriterionKind::original;
  original.cmf = lb::CmfKind::original;
  original.refresh = lb::CmfRefresh::build_once;

  auto relaxed = setup.params;
  relaxed.criterion = lb::CriterionKind::relaxed;
  relaxed.cmf = lb::CmfKind::modified;
  relaxed.refresh = lb::CmfRefresh::recompute;

  std::cout << "# E3 (paper §V-D): criterion 35 vs criterion 37, same "
               "workload\n"
            << "# ranks=" << setup.workload.num_ranks
            << " tasks=" << setup.workload.tasks.size()
            << " k=" << setup.params.rounds << " f=" << setup.params.fanout
            << "\n";

  auto const a = lbaf::run_experiment(original, setup.workload);
  auto const b = lbaf::run_experiment(relaxed, setup.workload);

  Table table{{"Iteration", "Criterion 35 (I)", "Criterion 37 (I)"}};
  table.begin_row()
      .add_cell(0)
      .add_cell(a.initial_imbalance, 3)
      .add_cell(b.initial_imbalance, 3);
  auto const ra = lbaf::trial_records(a, 0);
  auto const rb = lbaf::trial_records(b, 0);
  for (std::size_t i = 0; i < ra.size() && i < rb.size(); ++i) {
    table.begin_row()
        .add_cell(ra[i].iteration)
        .add_cell(ra[i].imbalance, 3)
        .add_cell(rb[i].imbalance, 3);
  }
  bench::emit_table(opts, "table_criterion_compare", table);
  std::cout << "# paper shape: criterion 35 stalls high; criterion 37 "
               "converges ~300x lower\n";
  return 0;
}
