#pragma once

/// \file table_common.hpp
/// Shared setup for the §V iteration-table benches (E1-E3 in DESIGN.md):
/// the paper's 10^4-tasks-on-16-of-4096-ranks workload and its scaled
/// variants, plus the row printer matching the paper's table layout.

#include <iostream>

#include "bench_json.hpp"
#include "lb/lb_types.hpp"
#include "lbaf/experiment.hpp"
#include "lbaf/workload.hpp"
#include "support/config.hpp"
#include "support/table.hpp"

namespace tlb::bench {

struct TableSetup {
  lbaf::Workload workload;
  lb::LbParams params;
};

/// Build the §V-B experiment from command-line options. Defaults are the
/// paper's exact counts: 4096 ranks, 16 loaded, 10^4 tasks, k=10, f=6,
/// h=1.0, 10 iterations, 1 trial. The bimodal load profile puts a heavy
/// population above l_ave so the original criterion has an immovable mass
/// (the paper's stall mechanism; see DESIGN.md).
inline TableSetup make_table_setup(Options const& opts) {
  auto const ranks = static_cast<RankId>(opts.get_int("ranks", 4096));
  auto const loaded = static_cast<RankId>(opts.get_int("loaded", 16));
  auto const tasks =
      static_cast<std::size_t>(opts.get_int("tasks", 10000));
  auto const seed = static_cast<std::uint64_t>(opts.get_int("seed", 2021));

  lbaf::BimodalSpec spec;
  spec.heavy_fraction = opts.get_double("heavy-fraction", 0.3);

  TableSetup setup{
      lbaf::make_bimodal(ranks, loaded, tasks, spec, seed),
      lb::LbParams::tempered(),
  };
  setup.params.fanout = static_cast<int>(opts.get_int("fanout", 6));
  setup.params.rounds = static_cast<int>(opts.get_int("rounds", 10));
  setup.params.threshold = opts.get_double("threshold", 1.0);
  setup.params.num_iterations =
      static_cast<int>(opts.get_int("iters", 10));
  setup.params.num_trials = 1;
  setup.params.order = lb::OrderKind::arbitrary;
  setup.params.seed = seed ^ 0xabcdef;
  return setup;
}

/// Build one experiment's trial-0 records in the paper's table layout.
[[nodiscard]] inline Table
make_iteration_table(lbaf::ExperimentResult const& result) {
  Table table{{"Iteration", "Transfers", "Rejected", "Rejection rate (%)",
               "Imbalance (I)"}};
  table.begin_row()
      .add_cell(0)
      .add_cell("-")
      .add_cell("-")
      .add_cell("-")
      .add_cell(result.initial_imbalance, 3);
  for (auto const& r : lbaf::trial_records(result, 0)) {
    table.begin_row()
        .add_cell(r.iteration)
        .add_cell(r.transfers)
        .add_cell(r.rejected)
        .add_cell(r.rejection_rate, 2)
        .add_cell(r.imbalance, 3);
  }
  return table;
}

/// Print one experiment's trial-0 records (CSV with --csv) and write the
/// --json document when requested.
inline void emit_iteration_table(lbaf::ExperimentResult const& result,
                                 Options const& opts,
                                 std::string_view bench_name) {
  emit_table(opts, bench_name, make_iteration_table(result));
}

/// Back-compat console-only form.
inline void print_iteration_table(lbaf::ExperimentResult const& result,
                                  bool csv) {
  Table const table = make_iteration_table(result);
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

} // namespace tlb::bench
