/// \file fig4a_step_time.cpp
/// E6 — Fig. 4a: total time per timestep (particle + non-particle + LB)
/// for every configuration. Paper shape: SPMD and AMT-no-LB track the
/// growing hot-spot load; the balanced configurations run much flatter
/// with spikes at the LB steps (the cost of the balancer, RDMA resizing,
/// and diagnostics); GrapevineLB sits between.
///
/// Flags: --steps --sample --csv ...

#include <iostream>

#include "pic_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const base = bench::make_pic_config(opts);
  int const sample = static_cast<int>(opts.get_int("sample", 20));

  std::cout << "# E6 (paper Fig. 4a): full step time per timestep\n";
  std::vector<std::string> labels;
  std::vector<std::vector<double>> series;
  for (auto const& named : bench::fig2_configs()) {
    auto const result = bench::run_config(base, named);
    labels.push_back(named.label);
    std::vector<double> column;
    column.reserve(result.steps.size());
    for (auto const& m : result.steps) {
      column.push_back(m.t_step);
    }
    series.push_back(std::move(column));
  }
  bench::emit_series("t_step (s)", labels, series, sample, opts,
                     "fig4a_step_time", 4);
  std::cout << "# paper shape: unbalanced configs climb with the hot "
               "spot; balanced configs flat with LB-step spikes\n";
  return 0;
}
