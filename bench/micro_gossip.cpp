/// \file micro_gossip.cpp
/// M1/M8 — the gossip (inform) stage bench. Two modes in one binary:
///
/// * With any `--benchmark*` flag (e.g. `--benchmark_format=json` from
///   scripts/bench_perf.sh) it runs the google-benchmark micros: cost and
///   traffic of one epoch versus rank count and fanout, plus the coverage
///   the epidemic reaches — the O(P*f*k) bound the round-gated forwarding
///   guarantees.
///
/// * Otherwise it runs the M8 delta-vs-full wire-plane comparison: for
///   each rank count, one seeded epoch under GossipWire::full and one
///   under GossipWire::delta (identical peer-selection stream, so the
///   message routing matches message-for-message and only the payload
///   encoding differs), reporting bytes/epoch, the full/delta split,
///   epoch wall time, and the bytes ratio. A second table replays the
///   full Algorithm 3 experiment under both wires and checks the
///   migration lists and imbalance trajectories are identical — the
///   delta plane is a transport optimization, not a protocol change.
///
/// Flags (comparison mode): --fanout --rounds --reps --seed --csv --json

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string_view>

#include "bench_json.hpp"
#include "lbaf/experiment.hpp"
#include "lbaf/gossip_sim.hpp"
#include "support/assert.hpp"
#include "lbaf/workload.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace tlb;

std::vector<LoadType> half_overloaded(int p) {
  std::vector<LoadType> loads(static_cast<std::size_t>(p), 0.0);
  for (int i = 0; i < p; i += 2) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  return loads;
}

void BM_GossipEpochVsRanks(benchmark::State& state) {
  auto const p = static_cast<int>(state.range(0));
  auto const loads = half_overloaded(p);
  std::uint64_t seed = 1;
  std::size_t messages = 0;
  for (auto _ : state) {
    Rng rng{seed++};
    lbaf::GossipStats stats;
    auto knowledge = lbaf::run_gossip(loads, 1.0, 6, 8, rng, &stats);
    benchmark::DoNotOptimize(knowledge);
    messages = stats.messages;
  }
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["msg_bound"] = static_cast<double>(p) * 6 * 8;
}
BENCHMARK(BM_GossipEpochVsRanks)->RangeMultiplier(4)->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_GossipEpochVsFanout(benchmark::State& state) {
  auto const fanout = static_cast<int>(state.range(0));
  auto const loads = half_overloaded(512);
  std::uint64_t seed = 1;
  double coverage = 0.0;
  for (auto _ : state) {
    Rng rng{seed++};
    auto knowledge = lbaf::run_gossip(loads, 1.0, fanout, 6, rng);
    // Mean fraction of underloaded ranks known by overloaded ranks.
    double sum = 0.0;
    for (int i = 0; i < 512; i += 2) {
      sum += static_cast<double>(
                 knowledge[static_cast<std::size_t>(i)].size()) /
             256.0;
    }
    coverage = sum / 256.0;
    benchmark::DoNotOptimize(knowledge);
  }
  state.counters["coverage"] = coverage;
}
BENCHMARK(BM_GossipEpochVsFanout)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_GossipEpochVsRounds(benchmark::State& state) {
  auto const rounds = static_cast<int>(state.range(0));
  auto const loads = half_overloaded(512);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng{seed++};
    auto knowledge = lbaf::run_gossip(loads, 1.0, 6, rounds, rng);
    benchmark::DoNotOptimize(knowledge);
  }
}
BENCHMARK(BM_GossipEpochVsRounds)->DenseRange(1, 10, 3)
    ->Unit(benchmark::kMillisecond);

// --- M8 comparison mode -------------------------------------------------

struct WireRun {
  lbaf::GossipStats stats;
  double micros_per_epoch = 0.0;
};

/// Time `reps` seeded epochs under `wire`; stats come from the first
/// (every rep re-seeds the Rng, so they are all identical).
WireRun run_wire(std::vector<LoadType> const& loads, int fanout, int rounds,
                 std::uint64_t seed, int reps, lb::GossipWire wire) {
  WireRun out;
  {
    Rng rng{seed};
    (void)lbaf::run_gossip(loads, 1.0, fanout, rounds, rng, &out.stats, 0,
                           wire);
  }
  auto const t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    Rng rng{seed};
    auto knowledge =
        lbaf::run_gossip(loads, 1.0, fanout, rounds, rng, nullptr, 0, wire);
    benchmark::DoNotOptimize(knowledge);
  }
  auto const t1 = std::chrono::steady_clock::now();
  out.micros_per_epoch =
      std::chrono::duration<double, std::micro>(t1 - t0).count() /
      static_cast<double>(reps);
  return out;
}

int run_comparison(Options const& opts) {
  auto const fanout = static_cast<int>(opts.get_int("fanout", 6));
  auto const rounds = static_cast<int>(opts.get_int("rounds", 10));
  auto const reps = static_cast<int>(opts.get_int("reps", 20));
  auto const seed = static_cast<std::uint64_t>(opts.get_int("seed", 2021));

  std::cout << "# M8: delta-encoded gossip wire plane vs full resend — "
               "identical routing, payload encoding only\n"
            << "# fanout=" << fanout << " rounds=" << rounds
            << " reps=" << reps << "\n";

  Table bytes_table{{"ranks", "full bytes/epoch", "delta bytes/epoch",
                     "bytes ratio", "full msgs", "delta msgs",
                     "full snapshots", "full us/epoch", "delta us/epoch"}};
  for (int const p : {64, 256, 1024, 4096}) {
    auto const loads = half_overloaded(p);
    auto const full =
        run_wire(loads, fanout, rounds, seed, reps, lb::GossipWire::full);
    auto const delta =
        run_wire(loads, fanout, rounds, seed, reps, lb::GossipWire::delta);
    // The per-epoch overlay makes routing knowledge-independent, so both
    // modes produce the exact same message graph — only payload encoding
    // differs.
    TLB_ASSERT(full.stats.messages == delta.stats.messages);
    bytes_table.begin_row()
        .add_cell(p)
        .add_cell(full.stats.bytes)
        .add_cell(delta.stats.bytes)
        .add_cell(static_cast<double>(full.stats.bytes) /
                      static_cast<double>(delta.stats.bytes),
                  2)
        .add_cell(full.stats.messages)
        .add_cell(delta.stats.messages)
        .add_cell(delta.stats.full_messages)
        .add_cell(full.micros_per_epoch, 1)
        .add_cell(delta.micros_per_epoch, 1);
  }

  // Decision equivalence: the whole iterative-refinement experiment under
  // both wires must produce the same migrations and the same imbalance
  // trajectory (the wire plane may only change how bytes are encoded).
  Table decisions_table{{"ranks", "best I (full)", "best I (delta)",
                         "migrations", "identical"}};
  for (RankId const p : {64, 256}) {
    lbaf::BimodalSpec const spec;
    auto const workload = lbaf::make_bimodal(
        p, std::max<RankId>(2, p / 16), 2000, spec, seed);
    auto params = lb::LbParams::tempered();
    params.fanout = fanout;
    params.rounds = rounds;
    params.num_iterations = 4;
    params.num_trials = 1;
    params.seed = seed ^ 0xabcdef;
    params.gossip_wire = lb::GossipWire::full;
    auto const rf = lbaf::run_experiment(params, workload);
    params.gossip_wire = lb::GossipWire::delta;
    auto const rd = lbaf::run_experiment(params, workload);
    bool identical = rf.best_migrations == rd.best_migrations &&
                     rf.best_imbalance == rd.best_imbalance;
    for (std::size_t i = 0; i < rf.records.size(); ++i) {
      identical = identical &&
                  rf.records[i].transfers == rd.records[i].transfers &&
                  rf.records[i].imbalance == rd.records[i].imbalance;
    }
    decisions_table.begin_row()
        .add_cell(static_cast<int>(p))
        .add_cell(rf.best_imbalance, 3)
        .add_cell(rd.best_imbalance, 3)
        .add_cell(rf.best_migrations.size())
        .add_cell(identical ? "yes" : "NO");
  }

  bool const csv = opts.get_bool("csv", false);
  for (auto const* t : {&bytes_table, &decisions_table}) {
    if (csv) {
      t->print_csv(std::cout);
    } else {
      t->print(std::cout);
    }
    std::cout << "\n";
  }
  if (auto const path = bench::json_output_path(opts, "micro_gossip");
      !path.empty()) {
    bench::write_bench_json(path, "micro_gossip", opts,
                            {{"wire_bytes", &bytes_table},
                             {"decision_equivalence", &decisions_table}});
    std::cout << "# wrote " << path << "\n";
  }
  std::cout << "# expected shape: delta mode ships each knowledge entry "
               "roughly once per receiver instead of once per message, so "
               "bytes/epoch drops well past 2x at 256+ ranks while "
               "decisions stay bit-identical\n";
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]}.starts_with("--benchmark")) {
      benchmark::Initialize(&argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      benchmark::Shutdown();
      return 0;
    }
  }
  return run_comparison(tlb::Options::parse(argc, argv));
}
