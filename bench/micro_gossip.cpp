/// \file micro_gossip.cpp
/// M1 — google-benchmark microbenchmarks of the gossip (inform) stage:
/// cost and traffic of one epoch versus rank count and fanout, plus the
/// coverage the epidemic reaches. Characterizes the O(P*f*k) bound the
/// round-gated forwarding guarantees.

#include <benchmark/benchmark.h>

#include "lbaf/gossip_sim.hpp"
#include "support/rng.hpp"

namespace {

using namespace tlb;

std::vector<LoadType> half_overloaded(int p) {
  std::vector<LoadType> loads(static_cast<std::size_t>(p), 0.0);
  for (int i = 0; i < p; i += 2) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  return loads;
}

void BM_GossipEpochVsRanks(benchmark::State& state) {
  auto const p = static_cast<int>(state.range(0));
  auto const loads = half_overloaded(p);
  std::uint64_t seed = 1;
  std::size_t messages = 0;
  for (auto _ : state) {
    Rng rng{seed++};
    lbaf::GossipStats stats;
    auto knowledge = lbaf::run_gossip(loads, 1.0, 6, 8, rng, &stats);
    benchmark::DoNotOptimize(knowledge);
    messages = stats.messages;
  }
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["msg_bound"] = static_cast<double>(p) * 6 * 8;
}
BENCHMARK(BM_GossipEpochVsRanks)->RangeMultiplier(4)->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_GossipEpochVsFanout(benchmark::State& state) {
  auto const fanout = static_cast<int>(state.range(0));
  auto const loads = half_overloaded(512);
  std::uint64_t seed = 1;
  double coverage = 0.0;
  for (auto _ : state) {
    Rng rng{seed++};
    auto knowledge = lbaf::run_gossip(loads, 1.0, fanout, 6, rng);
    // Mean fraction of underloaded ranks known by overloaded ranks.
    double sum = 0.0;
    for (int i = 0; i < 512; i += 2) {
      sum += static_cast<double>(
                 knowledge[static_cast<std::size_t>(i)].size()) /
             256.0;
    }
    coverage = sum / 256.0;
    benchmark::DoNotOptimize(knowledge);
  }
  state.counters["coverage"] = coverage;
}
BENCHMARK(BM_GossipEpochVsFanout)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_GossipEpochVsRounds(benchmark::State& state) {
  auto const rounds = static_cast<int>(state.range(0));
  auto const loads = half_overloaded(512);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng{seed++};
    auto knowledge = lbaf::run_gossip(loads, 1.0, 6, rounds, rng);
    benchmark::DoNotOptimize(knowledge);
  }
}
BENCHMARK(BM_GossipEpochVsRounds)->DenseRange(1, 10, 3)
    ->Unit(benchmark::kMillisecond);

} // namespace
