/// \file table_trials_sweep.cpp
/// Ablation (beyond the paper, motivated by §VI-B's remark that "fewer
/// trials would have sufficed"): best imbalance achieved by TemperedLB
/// over a grid of (n_trials x n_iters) on the §V-B workload, showing the
/// diminishing returns of both knobs.
///
/// Flags: --ranks --loaded --tasks --fanout --rounds --seed --csv

#include <iostream>

#include "table_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto opts = Options::parse(argc, argv);
  // Scaled down by default: the sweep runs 16 full experiments.
  if (!opts.has("ranks")) {
    opts.set("ranks", "1024");
  }
  if (!opts.has("tasks")) {
    opts.set("tasks", "4000");
  }
  auto const setup = bench::make_table_setup(opts);

  std::vector<int> const trial_counts{1, 2, 4, 10};
  std::vector<int> const iter_counts{1, 2, 4, 8};

  std::cout << "# Ablation: TemperedLB best imbalance over (trials x "
               "iterations); initial I shown in header\n"
            << "# ranks=" << setup.workload.num_ranks
            << " tasks=" << setup.workload.tasks.size() << "\n";

  std::vector<std::string> headers{"trials \\ iters"};
  for (int const it : iter_counts) {
    headers.push_back(std::to_string(it));
  }
  Table table{headers};
  for (int const trials : trial_counts) {
    table.begin_row().add_cell(std::to_string(trials));
    for (int const iters : iter_counts) {
      auto params = setup.params;
      params.criterion = lb::CriterionKind::relaxed;
      params.cmf = lb::CmfKind::modified;
      params.refresh = lb::CmfRefresh::recompute;
      params.order = lb::OrderKind::fewest_migrations;
      params.num_trials = trials;
      params.num_iterations = iters;
      auto const result = lbaf::run_experiment(params, setup.workload);
      table.add_cell(result.best_imbalance, 3);
    }
  }
  bench::emit_table(opts, "table_trials_sweep", table);
  std::cout << "# expected shape: iterations dominate; extra trials give "
               "small additional gains (the paper used 10x8)\n";
  return 0;
}
