/// \file micro_causal.cpp
/// M6 — cost of causal tracing on the message hot path.
///
/// Three price points on the same 64-rank fan-out workload as
/// BM_MessageThroughput in micro_runtime.cpp:
///
///   BM_CausalDormant  — telemetry compiled in, runtime-disabled. The
///                       stamp member rides in the envelope but the only
///                       work per message is the obs::enabled() relaxed
///                       load the send path already paid before this PR.
///                       Compare against BM_MessageThroughput (and the
///                       -DTLB_TELEMETRY=OFF build) to bound the dormant
///                       overhead; CI's bench-smoke asserts the ratio.
///   BM_CausalEnabled  — telemetry on: every send stamps a CausalStamp,
///                       every delivery is timed and appended to the
///                       CausalLog.
///   BM_CriticalPath   — the offline reducer over a log of the size one
///                       enabled pump leaves behind.
///
/// With -DTLB_TELEMETRY=OFF only the dormant benchmark exists, which is
/// exactly the comparison point.

#include <benchmark/benchmark.h>

#include "obs/telemetry.hpp"
#include "runtime/runtime.hpp"

#if TLB_TELEMETRY_ENABLED
#include "obs/causal.hpp"
#endif

namespace {

using namespace tlb;
using namespace tlb::rt;

RuntimeConfig config() {
  RuntimeConfig cfg;
  cfg.num_ranks = 64;
  cfg.num_threads = 1;
  cfg.seed = 0xca05;
  return cfg;
}

void pump(Runtime& rt, benchmark::State& state) {
  constexpr int fanout = 8;
  for (auto _ : state) {
    rt.post_all([](RankContext& ctx) {
      for (int i = 0; i < fanout; ++i) {
        auto const dest = static_cast<RankId>(
            ctx.rng().uniform_below(
                static_cast<std::uint64_t>(ctx.num_ranks())));
        ctx.send(dest, 64, [](RankContext&) {}, MessageKind::gossip);
      }
    });
    rt.run_until_quiescent();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * (fanout + 1));
}

void BM_CausalDormant(benchmark::State& state) {
  obs::set_enabled(false);
  Runtime rt{config()};
  pump(rt, state);
}
BENCHMARK(BM_CausalDormant)->Unit(benchmark::kMicrosecond);

#if TLB_TELEMETRY_ENABLED

void BM_CausalEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::CausalLog::instance().clear();
  Runtime rt{config()};
  pump(rt, state);
  obs::set_enabled(false);
  obs::CausalLog::instance().clear();
}
BENCHMARK(BM_CausalEnabled)->Unit(benchmark::kMicrosecond);

void BM_CriticalPath(benchmark::State& state) {
  // Build one enabled pump's worth of log, then time the reducer alone.
  obs::set_enabled(true);
  obs::CausalLog::instance().clear();
  Runtime rt{config()};
  constexpr int fanout = 8;
  rt.post_all([](RankContext& ctx) {
    for (int i = 0; i < fanout; ++i) {
      auto const dest = static_cast<RankId>(
          ctx.rng().uniform_below(
              static_cast<std::uint64_t>(ctx.num_ranks())));
      ctx.send(dest, 64, [](RankContext&) {}, MessageKind::gossip);
    }
  });
  rt.run_until_quiescent();
  obs::set_enabled(false);
  auto const events = obs::CausalLog::instance().snapshot();
  for (auto _ : state) {
    auto path = obs::compute_critical_path(events);
    benchmark::DoNotOptimize(path.chain.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
  obs::CausalLog::instance().clear();
}
BENCHMARK(BM_CriticalPath)->Unit(benchmark::kMicrosecond);

#endif // TLB_TELEMETRY_ENABLED

} // namespace
