/// \file micro_cmf.cpp
/// M2 — microbenchmarks of the CMF build and sampling paths. The
/// recompute-per-candidate change (§V-A change #3) multiplies BUILDCMF
/// calls by the number of candidate tasks, so its absolute cost matters.

#include <benchmark/benchmark.h>

#include "lb/cmf.hpp"
#include "lb/incremental_cmf.hpp"
#include "support/rng.hpp"

namespace {

using namespace tlb;
using namespace tlb::lb;

Knowledge make_knowledge(std::size_t n, std::uint64_t seed) {
  Knowledge k;
  Rng rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    k.insert(static_cast<RankId>(i + 1), rng.uniform(0.0, 0.95));
  }
  return k;
}

void BM_CmfBuild(benchmark::State& state) {
  auto const n = static_cast<std::size_t>(state.range(0));
  auto const kind = state.range(1) == 0 ? CmfKind::original
                                        : CmfKind::modified;
  auto const k = make_knowledge(n, 42);
  for (auto _ : state) {
    Cmf cmf{kind, k.entries(), 1.0, 0};
    benchmark::DoNotOptimize(cmf);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CmfBuild)
    ->ArgsProduct({{16, 256, 4096}, {0, 1}});

void BM_CmfSample(benchmark::State& state) {
  auto const n = static_cast<std::size_t>(state.range(0));
  auto const k = make_knowledge(n, 42);
  Cmf const cmf{CmfKind::modified, k.entries(), 1.0, 0};
  Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmf.sample(rng));
  }
}
BENCHMARK(BM_CmfSample)->Arg(16)->Arg(256)->Arg(4096);

/// One transfer-candidate step under CmfRefresh::recompute: rebuild the
/// CMF from n-rank knowledge, sample a recipient, and commit a speculative
/// delta — O(n) per candidate. Baseline for BM_CmfIncrementalUpdate. The
/// +d/−d delta pair keeps the state steady so the loop never saturates.
void BM_CmfRecomputeStep(benchmark::State& state) {
  auto const n = static_cast<std::size_t>(state.range(0));
  auto k = make_knowledge(n, 42);
  Rng rng{7};
  for (auto _ : state) {
    Cmf const cmf{CmfKind::modified, k.entries(), 1.0, 0};
    RankId const target = cmf.sample(rng);
    k.add_load(target, 0.01);
    k.add_load(target, -0.01);
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CmfRecomputeStep)->Arg(16)->Arg(256)->Arg(4096);

/// The same candidate step under CmfRefresh::incremental: sample via the
/// Fenwick prefix search and point-update the recipient's weight in place
/// — O(log n) per candidate. The acceptance bar is ≥10x over
/// BM_CmfRecomputeStep at 4096-rank knowledge.
void BM_CmfIncrementalUpdate(benchmark::State& state) {
  auto const n = static_cast<std::size_t>(state.range(0));
  auto const k = make_knowledge(n, 42);
  IncrementalCmf inc{CmfKind::modified, k.entries(), 1.0, 0};
  Rng rng{7};
  for (auto _ : state) {
    RankId const target = inc.sample(rng);
    inc.add_load(target, 0.01);
    inc.add_load(target, -0.01);
    benchmark::DoNotOptimize(inc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CmfIncrementalUpdate)->Arg(16)->Arg(256)->Arg(4096);

void BM_KnowledgeMerge(benchmark::State& state) {
  auto const n = static_cast<std::size_t>(state.range(0));
  auto const a = make_knowledge(n, 1);
  // Interleaved rank ids force a full merge.
  Knowledge b;
  Rng rng{2};
  for (std::size_t i = 0; i < n; ++i) {
    b.insert(static_cast<RankId>(2 * i), rng.uniform(0.0, 1.0));
  }
  for (auto _ : state) {
    Knowledge merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_KnowledgeMerge)->Arg(16)->Arg(256)->Arg(4096);

} // namespace
