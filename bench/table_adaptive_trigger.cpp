/// \file table_adaptive_trigger.cpp
/// Extension experiment motivated by §IV-A's tradeoff — "the more scalable
/// the load balancer, the more frequently it can be invoked as workloads
/// dynamically vary": compare the paper's fixed 100-step LB schedule
/// against an imbalance-triggered adaptive schedule at several thresholds.
/// A cheap (scalable) balancer can afford a low trigger and harvest the
/// between-period imbalance the fixed schedule leaves on the table.
///
/// Flags: --steps --ranks-x --ranks-y --trials --iters --csv ...

#include <iostream>

#include "pic_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const base = bench::make_pic_config(opts);

  struct Case {
    std::string label;
    double trigger; // 0 = fixed schedule only
  };
  std::vector<Case> const cases{
      {"fixed every 100 (paper)", 0.0},
      {"adaptive, trigger I>2.0", 2.0},
      {"adaptive, trigger I>1.0", 1.0},
      {"adaptive, trigger I>0.5", 0.5},
  };

  std::cout << "# Extension (§IV-A tradeoff): periodic vs "
               "imbalance-triggered LB schedule (TemperedLB)\n"
            << "# ranks=" << base.mesh.ranks_x * base.mesh.ranks_y
            << " steps=" << base.steps << "\n";

  Table table{{"schedule", "LB invocations", "t_p (s)", "t_lb (s)",
               "t_total (s)", "migrations"}};
  for (auto const& c : cases) {
    auto cfg = base;
    cfg.mode = pic::ExecutionMode::amt;
    cfg.strategy = "tempered";
    cfg.lb_trigger_imbalance = c.trigger;
    pic::PicApp app{cfg};
    auto const result = app.run();
    std::size_t invocations = 0;
    for (auto const& m : result.steps) {
      if (m.t_lb > 0.0) {
        ++invocations;
      }
    }
    table.begin_row()
        .add_cell(c.label)
        .add_cell(invocations)
        .add_cell(result.totals.t_particle, 1)
        .add_cell(result.totals.t_lb, 2)
        .add_cell(result.totals.t_total, 1)
        .add_cell(result.totals.migrations);
  }
  bench::emit_table(opts, "table_adaptive_trigger", table);
  std::cout << "# expected shape: adaptive triggers invoke the balancer "
               "more often, cutting t_p by more than the extra t_lb they "
               "cost — the payoff of a scalable balancer\n";
  return 0;
}
