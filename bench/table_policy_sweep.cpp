/// \file table_policy_sweep.cpp
/// M7 — the adaptive-invocation experiment: every trigger policy across
/// every synthetic scenario, total simulated wall-clock accounted as
/// phase makespans plus modeled LB cost. The acceptance story: cost/benefit
/// must beat always-invoke wherever the workload has calm stretches and
/// stay within a few percent of the best fixed policy everywhere
/// (tests/workload/policy_sim_test.cpp pins exactly this off the same
/// sweep document).
///
/// Flags: --ranks --phases --tasks --seed --strategy --csv
///        --json [path]        bench table document
///        --sweep-json [path]  the raw {"sweep": [...]} artifact
///                             (write_sim_json — what the M7 test parses)

#include <fstream>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "policy/trigger_policy.hpp"
#include "support/config.hpp"
#include "support/table.hpp"
#include "workload/policy_sim.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);

  workload::SimConfig base;
  base.scenario.num_ranks =
      static_cast<RankId>(opts.get_int("ranks", 64));
  base.scenario.phases =
      static_cast<std::size_t>(opts.get_int("phases", 32));
  base.scenario.seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 0x5eedf00d));
  base.tasks_per_rank =
      static_cast<std::size_t>(opts.get_int("tasks", 16));
  base.strategy = opts.get_string("strategy", "greedy");

  std::cout << "# M7: trigger policy x scenario sweep (strategy="
            << base.strategy << ", ranks=" << base.scenario.num_ranks
            << ", phases=" << base.scenario.phases << ")\n";

  std::vector<workload::SimResult> results;
  Table table{{"scenario", "policy", "invocations", "work (s)", "lb (s)",
               "total (s)", "mean I", "fc err"}};
  for (auto const scenario : workload::scenario_names()) {
    for (auto const policy : policy::policy_specs()) {
      auto config = base;
      config.scenario.name = std::string{scenario};
      config.policy = std::string{policy};
      auto const r = workload::run_policy_sim(config);
      table.begin_row()
          .add_cell(r.scenario)
          .add_cell(r.policy)
          .add_cell(r.invocations)
          .add_cell(r.work_seconds, 3)
          .add_cell(r.lb_seconds, 3)
          .add_cell(r.total_seconds(), 3)
          .add_cell(r.mean_imbalance, 3)
          .add_cell(r.mean_forecast_error, 3);
      results.push_back(r);
    }
  }
  bench::emit_table(opts, "table_policy_sweep", table);

  if (opts.has("sweep-json")) {
    auto path = opts.get_string("sweep-json", "");
    if (path.empty() || path == "true") {
      path = "BENCH_policy_sweep.json";
    }
    std::ofstream os{path};
    workload::write_sim_json(os, results);
    os << '\n';
    std::cout << "# wrote " << path << "\n";
  }
  std::cout << "# expected shape: costbenefit skips calm phases (bursty, "
               "periodic) and beats always-invoke on total; no scenario "
               "leaves it more than a few percent behind the best fixed "
               "policy\n";
  return 0;
}
