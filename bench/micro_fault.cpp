/// \file micro_fault.cpp
/// M5 — cost of the fault plane on the message hot path.
///
/// Three price points, measured on the same 64-rank fan-out workload as
/// BM_MessageThroughput in micro_runtime.cpp:
///
///   BM_FaultPath/none      — no hook installed.  With -DTLB_FAULT=ON this
///                            is the dormant cost (one pointer test per
///                            send/drain); with -DTLB_FAULT=OFF the hook
///                            member does not exist and this is the true
///                            baseline.  Comparing the two builds bounds
///                            the dormant overhead.
///   BM_FaultPath/clean     — the "none" profile installed: every message
///                            takes the virtual on_send call but no fault
///                            fires (only compiled under TLB_FAULT).
///   BM_FaultPath/drops     — the canonical lossy profile actually
///                            injecting faults (only under TLB_FAULT).

#include <benchmark/benchmark.h>

#include "runtime/runtime.hpp"

#if TLB_FAULT_ENABLED
#include "fault/fault_config.hpp"
#include "fault/fault_plane.hpp"
#endif

namespace {

using namespace tlb;
using namespace tlb::rt;

RuntimeConfig config() {
  RuntimeConfig cfg;
  cfg.num_ranks = 64;
  cfg.num_threads = 1;
  cfg.seed = 0xbe7c;
  return cfg;
}

void pump(Runtime& rt, benchmark::State& state) {
  constexpr int fanout = 8;
  for (auto _ : state) {
    rt.post_all([](RankContext& ctx) {
      for (int i = 0; i < fanout; ++i) {
        auto const dest = static_cast<RankId>(
            ctx.rng().uniform_below(
                static_cast<std::uint64_t>(ctx.num_ranks())));
        ctx.send(dest, 64, [](RankContext&) {}, MessageKind::gossip);
      }
    });
    rt.run_until_quiescent();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * (fanout + 1));
}

void BM_FaultPathNone(benchmark::State& state) {
  Runtime rt{config()};
  pump(rt, state);
}
BENCHMARK(BM_FaultPathNone)->Unit(benchmark::kMicrosecond);

#if TLB_FAULT_ENABLED

void BM_FaultPathCleanHook(benchmark::State& state) {
  Runtime rt{config()};
  auto plane = fault::install_fault_plane(rt, fault::FaultConfig::none());
  pump(rt, state);
  rt.set_fault_hook(nullptr);
}
BENCHMARK(BM_FaultPathCleanHook)->Unit(benchmark::kMicrosecond);

void BM_FaultPathDrops(benchmark::State& state) {
  Runtime rt{config()};
  auto plane = fault::install_fault_plane(rt, fault::FaultConfig::drops());
  pump(rt, state);
  rt.set_fault_hook(nullptr);
}
BENCHMARK(BM_FaultPathDrops)->Unit(benchmark::kMicrosecond);

#endif // TLB_FAULT_ENABLED

} // namespace
