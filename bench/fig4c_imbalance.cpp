/// \file fig4c_imbalance.cpp
/// E8 — Fig. 4c: the imbalance metric I (Eqn. 1) of per-rank particle
/// task load over the run, for each configuration. Paper shape: without
/// LB, I starts near 7 and decays toward ~3.3 as average load grows; the
/// balanced configurations hold I near zero between LB spikes, with
/// GrapevineLB noticeably worse than the rest.
///
/// Flags: --steps --ranks-x --ranks-y --sample --csv --trials --iters ...

#include <iostream>

#include "pic_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const base = bench::make_pic_config(opts);
  int const sample = static_cast<int>(opts.get_int("sample", 20));

  std::cout << "# E8 (paper Fig. 4c): imbalance I of particle task load "
               "over time\n";
  std::vector<std::string> labels;
  std::vector<std::vector<double>> series;
  for (auto const& named : bench::fig2_configs()) {
    if (named.mode == pic::ExecutionMode::spmd) {
      continue; // Fig. 4c plots the task-based configurations
    }
    auto const result = bench::run_config(base, named);
    labels.push_back(named.label);
    std::vector<double> column;
    column.reserve(result.steps.size());
    for (auto const& m : result.steps) {
      column.push_back(m.imbalance);
    }
    series.push_back(std::move(column));
  }
  bench::emit_series("imbalance I", labels, series, sample, opts,
                     "fig4c_imbalance");
  std::cout << "# paper shape: no-LB decays ~7 -> ~3.3; LB'd configs stay "
               "near 0; GrapevineLB sits above the others\n";
  return 0;
}
