/// \file micro_transfer.cpp
/// M3 — microbenchmarks of the transfer stage (Algorithm 2): one full
/// pass over candidate tasks under each (criterion, refresh, ordering)
/// combination, isolating the cost of the paper's algorithmic changes.

#include <benchmark/benchmark.h>

#include "lb/order.hpp"
#include "lb/transfer.hpp"
#include "support/rng.hpp"

namespace {

using namespace tlb;
using namespace tlb::lb;

struct Fixture {
  std::vector<TaskEntry> tasks;
  Knowledge knowledge;
  LoadType l_p = 0.0;
  LoadType l_ave = 0.0;
};

Fixture make_fixture(std::size_t num_tasks, std::size_t known_ranks) {
  Fixture f;
  Rng rng{11};
  for (std::size_t i = 0; i < num_tasks; ++i) {
    double const load = rng.uniform(0.05, 1.0);
    f.tasks.push_back({static_cast<TaskId>(i), load});
    f.l_p += load;
  }
  f.l_ave = f.l_p / 16.0;
  for (std::size_t i = 0; i < known_ranks; ++i) {
    f.knowledge.insert(static_cast<RankId>(i + 1),
                       rng.uniform(0.0, f.l_ave));
  }
  return f;
}

void run_case(benchmark::State& state, LbParams params) {
  auto const num_tasks = static_cast<std::size_t>(state.range(0));
  auto const fixture = make_fixture(num_tasks, 128);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Knowledge knowledge = fixture.knowledge;
    Rng rng{seed++};
    auto result = run_transfer(params, 0, fixture.tasks, fixture.l_p,
                               fixture.l_ave, knowledge, rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(num_tasks));
}

void BM_TransferOriginalBuildOnce(benchmark::State& state) {
  run_case(state, LbParams::grapevine());
}
BENCHMARK(BM_TransferOriginalBuildOnce)->Arg(24)->Arg(256)->Arg(2048);

void BM_TransferRelaxedRecompute(benchmark::State& state) {
  run_case(state, LbParams::tempered());
}
BENCHMARK(BM_TransferRelaxedRecompute)->Arg(24)->Arg(256)->Arg(2048);

void BM_TransferRelaxedBuildOnce(benchmark::State& state) {
  auto params = LbParams::tempered();
  params.refresh = CmfRefresh::build_once;
  run_case(state, params);
}
BENCHMARK(BM_TransferRelaxedBuildOnce)->Arg(24)->Arg(256)->Arg(2048);

/// Head-to-head at |S^p| = range(1) known ranks: the recompute reference
/// pays O(tasks x |S^p|), the incremental mode O(tasks x log |S^p|). The
/// acceptance bar is incremental < recompute at every (tasks, knowledge)
/// size, with the gap widening toward 4096-rank knowledge.
void run_knowledge_case(benchmark::State& state, LbParams params) {
  auto const num_tasks = static_cast<std::size_t>(state.range(0));
  auto const known = static_cast<std::size_t>(state.range(1));
  auto const fixture = make_fixture(num_tasks, known);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Knowledge knowledge = fixture.knowledge;
    Rng rng{seed++};
    auto result = run_transfer(params, 0, fixture.tasks, fixture.l_p,
                               fixture.l_ave, knowledge, rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(num_tasks));
}

void BM_TransferRecomputeByKnowledge(benchmark::State& state) {
  run_knowledge_case(state, LbParams::tempered());
}
BENCHMARK(BM_TransferRecomputeByKnowledge)
    ->ArgsProduct({{24, 256, 2048}, {16, 256, 4096}});

void BM_TransferIncrementalByKnowledge(benchmark::State& state) {
  run_knowledge_case(state, LbParams::tempered_fast());
}
BENCHMARK(BM_TransferIncrementalByKnowledge)
    ->ArgsProduct({{24, 256, 2048}, {16, 256, 4096}});

void BM_OrderingCost(benchmark::State& state) {
  auto const kind = static_cast<OrderKind>(state.range(1));
  auto const fixture =
      make_fixture(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto out = order_tasks(kind, fixture.tasks, fixture.l_ave, fixture.l_p);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_OrderingCost)
    ->ArgsProduct({{256, 4096}, {0, 1, 2, 3}});

} // namespace
