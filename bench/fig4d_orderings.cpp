/// \file fig4d_orderings.cpp
/// E9 — Fig. 4d: particle update time per timestep for TemperedLB under
/// the three §V-E candidate-task orderings (Load-Intensive straw-man,
/// Fewest Migrations, Most Lightweight). Paper shape: Fewest Migrations
/// performs best overall (hence its use in all other plots); Most
/// Lightweight fails to beat even the straw-man.
///
/// Flags: --steps --sample --csv ...

#include <iostream>

#include "pic_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const base = bench::make_pic_config(opts);
  int const sample = static_cast<int>(opts.get_int("sample", 20));

  struct OrderConfig {
    std::string label;
    lb::OrderKind order;
  };
  std::vector<OrderConfig> const orders{
      {"LoadIntensive", lb::OrderKind::load_intensive},
      {"FewestMigrations", lb::OrderKind::fewest_migrations},
      {"Lightest", lb::OrderKind::lightest},
  };

  std::cout << "# E9 (paper Fig. 4d): particle update time per ordering "
               "(TemperedLB)\n";
  std::vector<std::string> labels;
  std::vector<std::vector<double>> series;
  Table totals{{"Ordering", "Particle total (s)", "Migrations",
                "t_lb (s)", "Remote exchange (%)"}};
  for (auto const& oc : orders) {
    auto cfg = base;
    cfg.mode = pic::ExecutionMode::amt;
    cfg.strategy = "tempered";
    cfg.lb_params.order = oc.order;
    pic::PicApp app{cfg};
    auto const result = app.run();
    labels.push_back(oc.label);
    std::vector<double> column;
    column.reserve(result.steps.size());
    for (auto const& m : result.steps) {
      column.push_back(m.t_particle);
    }
    series.push_back(std::move(column));
    totals.begin_row()
        .add_cell(oc.label)
        .add_cell(result.totals.t_particle, 1)
        .add_cell(result.totals.migrations)
        .add_cell(result.totals.t_lb, 2)
        .add_cell(result.totals.exchanged > 0
                      ? 100.0 *
                            static_cast<double>(
                                result.totals.remote_exchanged) /
                            static_cast<double>(result.totals.exchanged)
                      : 0.0,
                  1);
  }
  bool const csv = opts.get_bool("csv", false);
  bench::print_series("t_particle (s)", labels, series, sample, csv, 4);
  std::cout << "\n# run totals per ordering\n";
  if (csv) {
    totals.print_csv(std::cout);
  } else {
    totals.print(std::cout);
  }
  if (auto const path = bench::json_output_path(opts, "fig4d_orderings");
      !path.empty()) {
    Table const series_table =
        bench::make_series_table(labels, series, sample, 4);
    bench::write_bench_json(path, "fig4d_orderings", opts,
                            {{"t_particle (s)", &series_table},
                             {"run totals per ordering", &totals}});
    std::cout << "# wrote " << path << "\n";
  }
  std::cout << "# paper shape: FewestMigrations best overall; Lightest "
               "does not beat the straw-man\n";
  return 0;
}
