/// \file table_knowledge_cap.cpp
/// Extension experiment (the paper's footnote 2 future work): balance
/// quality and gossip traffic as a function of the per-rank knowledge cap
/// — "load balancing efficacy with more limited information to avoid this
/// potential scalability pitfall". The cap keeps the lowest-load (most
/// attractive) entries. The footnote also predicts, via random-graph
/// connectivity, that modest caps should already work well.
///
/// Flags: --ranks --loaded --tasks --fanout --rounds --seed --csv

#include <iostream>

#include "table_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto opts = Options::parse(argc, argv);
  if (!opts.has("ranks")) {
    opts.set("ranks", "1024");
  }
  if (!opts.has("tasks")) {
    opts.set("tasks", "4000");
  }
  auto const setup = bench::make_table_setup(opts);
  auto const seed = static_cast<std::uint64_t>(opts.get_int("seed", 2021));

  struct Case {
    std::string name;
    lbaf::Workload workload;
  };
  // Two regimes: the §V-B worst case (everything on 16 ranks; each
  // overloaded rank must reach *many* targets, so small caps starve
  // capacity) and a diffuse gradient imbalance (each overloaded rank only
  // sheds a little, so modest caps suffice — the footnote's regime).
  std::vector<Case> const cases{
      {"clustered §V-B (worst case)", setup.workload},
      {"gradient (diffuse imbalance)",
       lbaf::make_gradient(setup.workload.num_ranks,
                           setup.workload.tasks.size(), 4.0,
                           lbaf::LoadDistribution::gamma, 1.0, seed)},
  };

  bool const csv = opts.get_bool("csv", false);
  std::vector<std::pair<std::string, Table>> emitted;
  for (auto const& c : cases) {
    std::cout << "# Extension (paper footnote 2): TemperedLB efficacy vs "
                 "per-rank knowledge cap — "
              << c.name << "\n"
              << "# ranks=" << c.workload.num_ranks
              << " tasks=" << c.workload.tasks.size() << "\n";
    Table table{{"knowledge cap", "best I", "iter-1 I", "gossip msgs/iter",
                 "gossip bytes/iter", "iter-1 rejection (%)"}};
    for (int const cap : {2, 4, 8, 16, 32, 64, 0}) {
      auto params = setup.params;
      params.criterion = lb::CriterionKind::relaxed;
      params.cmf = lb::CmfKind::modified;
      params.refresh = lb::CmfRefresh::recompute;
      params.num_iterations = 8;
      params.max_knowledge = cap;
      auto const result = lbaf::run_experiment(params, c.workload);
      auto const records = lbaf::trial_records(result, 0);
      table.begin_row()
          .add_cell(cap == 0 ? std::string{"unlimited"}
                             : std::to_string(cap))
          .add_cell(result.best_imbalance, 3)
          .add_cell(records.front().imbalance, 3)
          .add_cell(records.front().gossip_messages)
          .add_cell(records.front().gossip_bytes)
          .add_cell(records.front().rejection_rate, 2);
    }
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << "\n";
    emitted.emplace_back(c.name, std::move(table));
  }
  if (auto const path =
          bench::json_output_path(opts, "table_knowledge_cap");
      !path.empty()) {
    std::vector<std::pair<std::string, Table const*>> tables;
    tables.reserve(emitted.size());
    for (auto const& [label, table] : emitted) {
      tables.emplace_back(label, &table);
    }
    bench::write_bench_json(path, "table_knowledge_cap", opts, tables);
    std::cout << "# wrote " << path << "\n";
  }
  std::cout << "# expected shape: caps starve capacity in the clustered "
               "worst case (quality ~ cap) but modest caps already reach "
               "near-unlimited quality under diffuse imbalance, while "
               "bounding message size at O(cap) instead of O(P)\n";
  return 0;
}
