/// \file fig4b_rank_loads.cpp
/// E7 — Fig. 4b: LB statistics in the particle update over time — the
/// maximum and minimum per-rank task load for each balanced configuration
/// plus the lower bound max(l_ave, heaviest task), which bounds any
/// achievable distribution. Paper shape: Max hugs the lower bound for
/// Greedy/Hier/Tempered, with TemperedLB tracking well through the
/// rapidly-evolving 800-1100 window; Min sits below but converges as the
/// average grows.
///
/// Flags: --steps --sample --strategy (default tempered) --csv ...

#include <iostream>

#include "pic_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto const base = bench::make_pic_config(opts);
  int const sample = static_cast<int>(opts.get_int("sample", 20));

  std::cout << "# E7 (paper Fig. 4b): max/min per-rank task load and the "
               "lower bound, per balanced configuration\n";

  std::vector<std::string> labels;
  std::vector<std::vector<double>> series;
  bool lower_bound_done = false;
  for (auto const& named : bench::fig2_configs()) {
    if (named.strategy == "none") {
      continue;
    }
    auto const result = bench::run_config(base, named);
    if (!lower_bound_done) {
      // The lower bound is configuration-independent (same workload):
      // max(l_ave, load of the heaviest task).
      std::vector<double> bound;
      bound.reserve(result.steps.size());
      for (auto const& m : result.steps) {
        bound.push_back(std::max(m.avg_rank_load, m.max_task_load));
      }
      labels.push_back("Lower bound (max)");
      series.push_back(std::move(bound));
      lower_bound_done = true;
    }
    std::vector<double> max_load;
    std::vector<double> min_load;
    max_load.reserve(result.steps.size());
    min_load.reserve(result.steps.size());
    for (auto const& m : result.steps) {
      max_load.push_back(m.max_rank_load);
      min_load.push_back(m.min_rank_load);
    }
    labels.push_back(std::string{named.label} + " Max");
    series.push_back(std::move(max_load));
    labels.push_back(std::string{named.label} + " Min");
    series.push_back(std::move(min_load));
  }
  bench::emit_series("per-rank task load (s)", labels, series, sample,
                     opts, "fig4b_rank_loads", 4);
  std::cout << "# paper shape: Max hugs the lower bound for "
               "Greedy/Hier/Tempered; GrapevineLB's Max rides higher\n";
  return 0;
}
