#pragma once

/// \file bench_json.hpp
/// Shared `--json` support for the bench harnesses. Every bench accepts
///
///   --json            write BENCH_<name>.json in the working directory
///   --json <path>     write to <path>
///
/// The document echoes the bench name, the parsed command-line options
/// (so a result file is self-describing), and each emitted table as
/// {label, headers, rows} with cells kept as the same strings the console
/// renderer prints.

#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "support/config.hpp"
#include "support/table.hpp"

namespace tlb::bench {

/// The --json output path: empty when not requested, BENCH_<name>.json
/// for the bare flag form, the given value otherwise.
[[nodiscard]] inline std::string json_output_path(Options const& opts,
                                                  std::string_view name) {
  if (!opts.has("json")) {
    return {};
  }
  auto const v = opts.get_string("json", "");
  if (v.empty() || v == "true") {
    return "BENCH_" + std::string{name} + ".json";
  }
  return v;
}

/// Write the bench document for `tables` (label, table) to `path`.
inline void
write_bench_json(std::string const& path, std::string_view name,
                 Options const& opts,
                 std::vector<std::pair<std::string, Table const*>> const&
                     tables) {
  auto os = obs::open_output_file(path);
  obs::JsonWriter w{os};
  w.begin_object();
  w.kv("bench", name);
  w.key("config").begin_object();
  for (auto const& [key, value] : opts.items()) {
    w.kv(key, value);
  }
  w.end_object();
  w.key("tables").begin_array();
  for (auto const& [label, table] : tables) {
    w.begin_object();
    w.kv("label", label);
    w.key("headers").begin_array();
    for (auto const& h : table->headers()) {
      w.value(h);
    }
    w.end_array();
    w.key("rows").begin_array();
    for (auto const& row : table->data()) {
      w.begin_array();
      for (auto const& cell : row) {
        w.value(cell);
      }
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

/// Print `table` to stdout (CSV when --csv) and, when --json was given,
/// also write the machine-readable document. The standard emission path
/// for single-table benches.
inline void emit_table(Options const& opts, std::string_view bench_name,
                       Table const& table) {
  if (opts.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  auto const path = json_output_path(opts, bench_name);
  if (!path.empty()) {
    write_bench_json(path, bench_name, opts,
                     {{std::string{bench_name}, &table}});
    std::cout << "# wrote " << path << "\n";
  }
}

} // namespace tlb::bench
