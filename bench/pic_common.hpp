#pragma once

/// \file pic_common.hpp
/// Shared setup for the EMPIRE-surrogate figure benches (E4-E9): the
/// default B-Dot run configuration, config-from-flags plumbing, and the
/// named configurations of Figs. 2-4 (SPMD, AMT-no-LB, AMT + each
/// strategy).

#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "pic/app.hpp"
#include "support/config.hpp"
#include "support/table.hpp"

namespace tlb::bench {

/// Default scale: 64 ranks x 24 colors, 600 steps, LB at step 2 then
/// every 100 (the paper's schedule). Flags raise it to paper scale
/// (--ranks-x=20 --ranks-y=20 gives the 400-rank layout).
inline pic::PicConfig make_pic_config(Options const& opts) {
  pic::PicConfig cfg;
  cfg.mesh.ranks_x = static_cast<int>(opts.get_int("ranks-x", 8));
  cfg.mesh.ranks_y = static_cast<int>(opts.get_int("ranks-y", 8));
  cfg.mesh.colors_x = static_cast<int>(opts.get_int("colors-x", 6));
  cfg.mesh.colors_y = static_cast<int>(opts.get_int("colors-y", 4));
  cfg.steps = static_cast<int>(opts.get_int("steps", 600));
  cfg.lb_period = static_cast<int>(opts.get_int("lb-period", 100));
  cfg.first_lb_step = static_cast<int>(opts.get_int("first-lb-step", 2));
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 0xE3));
  cfg.runtime_threads = static_cast<int>(opts.get_int("threads", 1));
  cfg.bdot.total_steps = cfg.steps;
  cfg.bdot.base_rate = opts.get_double("base-rate", 220.0);
  cfg.bdot.growth = opts.get_double("growth", 2.2);
  cfg.bdot.sigma_frac = opts.get_double("sigma", 0.1);
  cfg.lb_params.num_trials =
      static_cast<int>(opts.get_int("trials", 10));
  cfg.lb_params.num_iterations =
      static_cast<int>(opts.get_int("iters", 8));
  cfg.lb_params.fanout = static_cast<int>(opts.get_int("fanout", 6));
  cfg.lb_params.rounds = static_cast<int>(opts.get_int("rounds", 5));
  return cfg;
}

/// One of the paper's named configurations.
struct NamedConfig {
  std::string label;
  pic::ExecutionMode mode;
  std::string strategy; // "none" when not balancing
};

/// The five configurations of Fig. 2 / Fig. 3 plus AMT-no-LB, in the
/// paper's presentation order.
inline std::vector<NamedConfig> fig2_configs() {
  return {
      {"SPMD (no AMT)", pic::ExecutionMode::spmd, "none"},
      {"AMT without LB", pic::ExecutionMode::amt, "none"},
      {"AMT w/GrapevineLB", pic::ExecutionMode::amt, "grapevine"},
      {"AMT w/GreedyLB", pic::ExecutionMode::amt, "greedy"},
      {"AMT w/HierLB", pic::ExecutionMode::amt, "hier"},
      {"AMT w/TemperedLB", pic::ExecutionMode::amt, "tempered"},
  };
}

/// Run one named configuration.
inline pic::RunResult run_config(pic::PicConfig base,
                                 NamedConfig const& named) {
  base.mode = named.mode;
  base.strategy = named.strategy;
  pic::PicApp app{std::move(base)};
  return app.run();
}

/// Build a per-step series table: one row per sampled step, one column
/// per configuration.
[[nodiscard]] inline Table
make_series_table(std::vector<std::string> const& labels,
                  std::vector<std::vector<double>> const& series,
                  int sample_every, int precision = 3) {
  std::vector<std::string> headers{"step"};
  headers.insert(headers.end(), labels.begin(), labels.end());
  Table table{headers};
  std::size_t const n = series.empty() ? 0 : series.front().size();
  for (std::size_t s = 0; s < n; s += static_cast<std::size_t>(
                                   sample_every)) {
    table.begin_row().add_cell(s);
    for (auto const& column : series) {
      table.add_cell(column[s], precision);
    }
  }
  return table;
}

/// Emit a per-step series table (console/CSV).
inline void print_series(std::string const& value_name,
                         std::vector<std::string> const& labels,
                         std::vector<std::vector<double>> const& series,
                         int sample_every, bool csv, int precision = 3) {
  Table const table =
      make_series_table(labels, series, sample_every, precision);
  std::cout << "# series: " << value_name << " (sampled every "
            << sample_every << " steps)\n";
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// print_series plus the shared --json handling.
inline void emit_series(std::string const& value_name,
                        std::vector<std::string> const& labels,
                        std::vector<std::vector<double>> const& series,
                        int sample_every, Options const& opts,
                        std::string_view bench_name, int precision = 3) {
  Table const table =
      make_series_table(labels, series, sample_every, precision);
  std::cout << "# series: " << value_name << " (sampled every "
            << sample_every << " steps)\n";
  if (opts.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  auto const path = json_output_path(opts, bench_name);
  if (!path.empty()) {
    write_bench_json(path, bench_name, opts,
                     {{value_name, &table}});
    std::cout << "# wrote " << path << "\n";
  }
}

} // namespace tlb::bench
