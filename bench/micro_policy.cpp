/// \file micro_policy.cpp
/// M7 — google-benchmark microbenchmarks of the adaptive-invocation
/// decision layer: single-model predictions over a realistic history
/// window, the Forecaster's per-phase observe+score+predict cycle, one
/// cost/benefit decide() (the per-phase overhead a policy adds to the
/// driver), and a full small policy × scenario simulation cell.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "policy/forecaster.hpp"
#include "policy/load_model.hpp"
#include "policy/trigger_policy.hpp"
#include "support/rng.hpp"
#include "workload/policy_sim.hpp"

namespace {

using namespace tlb;

std::vector<double> make_series(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    out.push_back(1.0 + 0.02 * static_cast<double>(t) +
                  rng.uniform(-0.1, 0.1));
  }
  return out;
}

/// One prediction from a 64-observation history — the per-rank inner step
/// of every forecast.
void BM_LoadModelPredict(benchmark::State& state, std::string const& name) {
  auto const model = policy::make_load_model(name);
  auto const series = make_series(64, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict(series));
  }
}
BENCHMARK_CAPTURE(BM_LoadModelPredict, persistence, "persistence");
BENCHMARK_CAPTURE(BM_LoadModelPredict, ema, "ema");
BENCHMARK_CAPTURE(BM_LoadModelPredict, trend, "trend");
BENCHMARK_CAPTURE(BM_LoadModelPredict, periodic, "periodic");

/// A full forecaster phase at 64 ranks: score the pending forecast,
/// append the measurement, predict the next phase.
void BM_ForecasterPhase(benchmark::State& state) {
  policy::Forecaster forecaster{policy::make_load_model("persistence")};
  Rng rng{23};
  std::vector<double> loads(64, 1.0);
  for (auto _ : state) {
    for (auto& l : loads) {
      l = rng.uniform(0.5, 1.5);
    }
    forecaster.observe(loads);
    benchmark::DoNotOptimize(forecaster.predict());
  }
}
BENCHMARK(BM_ForecasterPhase);

/// One cost/benefit decision + outcome at 64 ranks — what the policy adds
/// to each phase boundary.
void BM_CostBenefitDecide(benchmark::State& state) {
  policy::CostBenefitPolicy policy;
  Rng rng{29};
  std::vector<double> loads(64, 1.0);
  std::uint64_t phase = 0;
  for (auto _ : state) {
    for (auto& l : loads) {
      l = rng.uniform(0.5, 1.5);
    }
    loads[phase % loads.size()] += 2.0; // keep it imbalanced enough to think
    auto const d = policy.decide(phase++, loads);
    policy.record_outcome(d.invoke, d.invoke ? 0.01 : 0.0, {});
    benchmark::DoNotOptimize(d.invoke);
  }
}
BENCHMARK(BM_CostBenefitDecide);

/// One small end-to-end sweep cell (16 ranks × 16 phases, greedy): the
/// granularity EXPERIMENTS.md's M7 recipe runs twenty of.
void BM_PolicySimCell(benchmark::State& state, std::string const& policy) {
  workload::SimConfig config;
  config.scenario.name = "bursty";
  config.scenario.num_ranks = 16;
  config.scenario.phases = 16;
  config.policy = policy;
  for (auto _ : state) {
    auto const result = workload::run_policy_sim(config);
    benchmark::DoNotOptimize(result.invocations);
  }
}
BENCHMARK_CAPTURE(BM_PolicySimCell, always, std::string{"always"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicySimCell, costbenefit, std::string{"costbenefit"})
    ->Unit(benchmark::kMillisecond);

} // namespace
