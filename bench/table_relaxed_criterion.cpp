/// \file table_relaxed_criterion.cpp
/// E2 — the §V-D rejection-rate table: the same workload as E1 balanced
/// with the *relaxed* criterion (Algorithm 2 line 37), the modified CMF,
/// and per-candidate CMF recomputation. Expected shape (paper: I 280 ->
/// 3.34 after one iteration, converging to 0.623 by iteration 10, with
/// iteration-1 rejection of only ~5%): rapid convergence, rejection rate
/// rising only as the distribution approaches its floor.
///
/// Flags: --ranks --loaded --tasks --iters --fanout --rounds --threshold
///        --seed --heavy-fraction --csv

#include <iostream>

#include "table_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto setup = bench::make_table_setup(opts);

  setup.params.criterion = lb::CriterionKind::relaxed;
  setup.params.cmf = lb::CmfKind::modified;
  setup.params.refresh = lb::CmfRefresh::recompute;

  std::cout << "# E2 (paper §V-D): iterated TemperedLB with the RELAXED "
               "criterion\n"
            << "# ranks=" << setup.workload.num_ranks
            << " tasks=" << setup.workload.tasks.size()
            << " k=" << setup.params.rounds << " f=" << setup.params.fanout
            << " h=" << setup.params.threshold << "\n";
  auto const result = lbaf::run_experiment(setup.params, setup.workload);
  bench::emit_iteration_table(result, opts, "table_relaxed_criterion");
  std::cout << "# paper shape: I collapses in iteration 1 (280 -> 3.34) "
               "and converges near the max-task floor (0.623)\n";
  return 0;
}
