/// \file micro_telemetry.cpp
/// M5 — google-benchmark microbenchmarks of the telemetry layer itself:
/// the cost of a dormant guard (enabled() == false, the hot-path case the
/// <2% overhead budget rides on), of live counter/histogram updates, of
/// recording a span, and of a full instrumented LB invocation with
/// telemetry on versus off.

#include <benchmark/benchmark.h>

#include <sstream>

#include "lbaf/experiment.hpp"
#include "lbaf/workload.hpp"
#include "obs/metric.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace tlb;

/// The dormant fast path: one relaxed atomic load plus a not-taken branch.
/// This is what every TLB_SPAN/TLB_INSTANT site costs when telemetry is
/// compiled in but not runtime-enabled.
void BM_DormantSpanGuard(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    TLB_SPAN("bench", "dormant");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_DormantSpanGuard);

void BM_LiveSpan(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Tracer::instance().clear();
  for (auto _ : state) {
    TLB_SPAN("bench", "live");
    benchmark::ClobberMemory();
  }
  state.counters["events"] =
      static_cast<double>(obs::Tracer::instance().event_count());
  obs::Tracer::instance().clear();
  obs::set_enabled(false);
}
BENCHMARK(BM_LiveSpan);

void BM_CounterInc(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram hist{{1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}};
  double x = 0.0;
  for (auto _ : state) {
    hist.observe(x);
    x += 0.7;
    if (x > 100.0) {
      x = 0.0;
    }
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistryLookup(benchmark::State& state) {
  obs::Registry registry;
  for (auto _ : state) {
    auto& c = registry.counter("bench.lookup",
                               {{"category", "gossip"}});
    c.inc();
  }
  benchmark::DoNotOptimize(registry.size());
}
BENCHMARK(BM_RegistryLookup);

/// End-to-end: one sequential-emulation LB experiment with telemetry off
/// vs. on (spans + LB report collection). The ratio of these two is the
/// honest overhead number quoted in DESIGN.md.
void run_experiment_once(bool telemetry, std::uint64_t seed) {
  obs::set_enabled(telemetry);
  auto const workload = lbaf::make_bimodal(
      256, 8, 2000, lbaf::BimodalSpec{}, seed);
  auto params = lb::LbParams::tempered();
  params.num_trials = 1;
  params.num_iterations = 4;
  params.rounds = 5;
  if (telemetry) {
    obs::LbReportBuilder builder;
    auto result = lbaf::run_experiment(params, workload, &builder);
    benchmark::DoNotOptimize(result.best_imbalance);
  } else {
    auto result = lbaf::run_experiment(params, workload);
    benchmark::DoNotOptimize(result.best_imbalance);
  }
}

void BM_ExperimentTelemetryOff(benchmark::State& state) {
  std::uint64_t seed = 11;
  for (auto _ : state) {
    run_experiment_once(false, seed++);
  }
}
BENCHMARK(BM_ExperimentTelemetryOff)->Unit(benchmark::kMillisecond);

void BM_ExperimentTelemetryOn(benchmark::State& state) {
  std::uint64_t seed = 11;
  obs::Tracer::instance().clear();
  for (auto _ : state) {
    run_experiment_once(true, seed++);
    obs::Tracer::instance().clear(); // keep the buffers from saturating
  }
  obs::set_enabled(false);
}
BENCHMARK(BM_ExperimentTelemetryOn)->Unit(benchmark::kMillisecond);

/// Serialization cost of a populated registry (not on any hot path, but
/// worth knowing for per-phase dumps).
void BM_RegistryWriteJson(benchmark::State& state) {
  obs::Registry registry;
  for (int i = 0; i < 64; ++i) {
    registry
        .counter("bench.metric." + std::to_string(i),
                 {{"category", i % 2 == 0 ? "gossip" : "transfer"}})
        .inc(static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    std::ostringstream os;
    registry.write_json(os);
    benchmark::DoNotOptimize(os.str());
  }
}
BENCHMARK(BM_RegistryWriteJson);

} // namespace
