/// \file table_original_criterion.cpp
/// E1 — the §V-B rejection-rate table: iterating the *original*
/// GrapevineLB criterion (Algorithm 2 line 35) on the 10^4-tasks-on-16-of-
/// 4096-ranks workload. Expected shape (paper values: I 280 -> 187 and
/// then flat, with rejection rates >94%): a single early drop, then a
/// stall with near-total rejection.
///
/// Flags: --ranks --loaded --tasks --iters --fanout --rounds --threshold
///        --seed --heavy-fraction --csv

#include <iostream>

#include "table_common.hpp"

int main(int argc, char** argv) {
  using namespace tlb;
  auto const opts = Options::parse(argc, argv);
  auto setup = bench::make_table_setup(opts);

  // Pin the original GrapevineLB design point, keeping iteration count so
  // the stall is visible.
  setup.params.criterion = lb::CriterionKind::original;
  setup.params.cmf = lb::CmfKind::original;
  setup.params.refresh = lb::CmfRefresh::build_once;

  std::cout << "# E1 (paper §V-B): iterated GrapevineLB with the ORIGINAL "
               "criterion\n"
            << "# ranks=" << setup.workload.num_ranks
            << " tasks=" << setup.workload.tasks.size()
            << " k=" << setup.params.rounds << " f=" << setup.params.fanout
            << " h=" << setup.params.threshold << "\n";
  auto const result = lbaf::run_experiment(setup.params, setup.workload);
  bench::emit_iteration_table(result, opts, "table_original_criterion");
  std::cout << "# paper shape: one early drop (280 -> 187), then stall "
               "with ~100% rejection\n";
  return 0;
}
