/// \file micro_runtime.cpp
/// M4 — microbenchmarks of the AMT runtime substrate: active-message
/// throughput (sequential and threaded, plus a rank-count sweep at the
/// paper's scales), allreduce latency versus rank count,
/// termination-detection wave overhead, and object-migration throughput.
/// Throughput benches report the InlineHandler heap-fallback counter so
/// the perf trajectory proves the message plane stays allocation-free.

#include <benchmark/benchmark.h>

#include <atomic>

#include "runtime/collectives.hpp"
#include "runtime/inline_handler.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "runtime/termination.hpp"

namespace {

using namespace tlb;
using namespace tlb::rt;

RuntimeConfig config(RankId ranks, int threads) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  return cfg;
}

/// Fan-out storm shared by the throughput benches: every rank fires
/// `fanout` empty-payload messages at uniformly random peers, repeated to
/// quiescence. Returns the number of messages (storms + deliveries) per
/// storm so callers can report items/sec.
std::int64_t run_storm(Runtime& rt) {
  constexpr int fanout = 8;
  rt.post_all([](RankContext& ctx) {
    for (int i = 0; i < fanout; ++i) {
      auto const dest = static_cast<RankId>(
          ctx.rng().uniform_below(
              static_cast<std::uint64_t>(ctx.num_ranks())));
      ctx.send(dest, 64, [](RankContext&) {});
    }
  });
  rt.run_until_quiescent();
  return static_cast<std::int64_t>(rt.num_ranks()) * (fanout + 1);
}

void BM_MessageThroughput(benchmark::State& state) {
  auto const threads = static_cast<int>(state.range(0));
  Runtime rt{config(64, threads)};
  InlineHandler::reset_heap_fallback_count();
  std::int64_t per_storm = 0;
  for (auto _ : state) {
    per_storm = run_storm(rt);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          per_storm);
  state.counters["sbo_heap_fallbacks"] = static_cast<double>(
      InlineHandler::heap_fallback_count());
}
BENCHMARK(BM_MessageThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// The sequential driver at the paper's rank counts (the acceptance
/// metric for the message-plane overhaul is messages/sec at 1024 ranks):
/// working-set scaling shows the envelope-stride and staging-copy wins
/// that per-rank numbers at P=64 understate.
void BM_MessageThroughputAtScale(benchmark::State& state) {
  auto const ranks = static_cast<RankId>(state.range(0));
  Runtime rt{config(ranks, 1)};
  InlineHandler::reset_heap_fallback_count();
  std::int64_t per_storm = 0;
  for (auto _ : state) {
    per_storm = run_storm(rt);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          per_storm);
  state.counters["sbo_heap_fallbacks"] = static_cast<double>(
      InlineHandler::heap_fallback_count());
}
BENCHMARK(BM_MessageThroughputAtScale)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_AllreduceLatency(benchmark::State& state) {
  auto const p = static_cast<RankId>(state.range(0));
  Runtime rt{config(p, 1)};
  std::vector<LoadType> loads(static_cast<std::size_t>(p), 1.0);
  for (auto _ : state) {
    auto stats = allreduce_loads(rt, loads);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_AllreduceLatency)->RangeMultiplier(4)->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_TerminationWaves(benchmark::State& state) {
  auto const p = static_cast<RankId>(state.range(0));
  for (auto _ : state) {
    Runtime rt{config(p, 1)};
    TerminationDetector det{rt};
    det.post(0, [&det](RankContext& ctx) {
      for (RankId r = 0; r < ctx.num_ranks(); ++r) {
        det.send(ctx, r, 8, [](RankContext&) {});
      }
    });
    det.start();
    rt.run_until_quiescent();
    benchmark::DoNotOptimize(det.terminated());
  }
}
BENCHMARK(BM_TerminationWaves)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

class Blob final : public Migratable {
public:
  explicit Blob(std::size_t size) : size_{size} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return size_; }

private:
  std::size_t size_;
};

void BM_MigrationThroughput(benchmark::State& state) {
  auto const batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt{config(16, 1)};
    ObjectStore store{16};
    std::vector<Migration> migrations;
    for (std::size_t i = 0; i < batch; ++i) {
      auto const id = static_cast<TaskId>(i);
      store.create(0, id, std::make_unique<Blob>(1024));
      migrations.push_back(
          Migration{id, 0, static_cast<RankId>(1 + i % 15), 1.0});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.migrate(rt, migrations));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MigrationThroughput)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

} // namespace
