/// \file micro_runtime.cpp
/// M4 — microbenchmarks of the AMT runtime substrate: active-message
/// throughput (sequential and threaded), allreduce latency versus rank
/// count, termination-detection wave overhead, and object-migration
/// throughput.

#include <benchmark/benchmark.h>

#include <atomic>

#include "runtime/collectives.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "runtime/termination.hpp"

namespace {

using namespace tlb;
using namespace tlb::rt;

RuntimeConfig config(RankId ranks, int threads) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  return cfg;
}

void BM_MessageThroughput(benchmark::State& state) {
  auto const threads = static_cast<int>(state.range(0));
  Runtime rt{config(64, threads)};
  constexpr int fanout = 8;
  for (auto _ : state) {
    rt.post_all([](RankContext& ctx) {
      for (int i = 0; i < fanout; ++i) {
        auto const dest = static_cast<RankId>(
            ctx.rng().uniform_below(
                static_cast<std::uint64_t>(ctx.num_ranks())));
        ctx.send(dest, 64, [](RankContext&) {});
      }
    });
    rt.run_until_quiescent();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * (fanout + 1));
}
BENCHMARK(BM_MessageThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_AllreduceLatency(benchmark::State& state) {
  auto const p = static_cast<RankId>(state.range(0));
  Runtime rt{config(p, 1)};
  std::vector<LoadType> loads(static_cast<std::size_t>(p), 1.0);
  for (auto _ : state) {
    auto stats = allreduce_loads(rt, loads);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_AllreduceLatency)->RangeMultiplier(4)->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_TerminationWaves(benchmark::State& state) {
  auto const p = static_cast<RankId>(state.range(0));
  for (auto _ : state) {
    Runtime rt{config(p, 1)};
    TerminationDetector det{rt};
    det.post(0, [&det](RankContext& ctx) {
      for (RankId r = 0; r < ctx.num_ranks(); ++r) {
        det.send(ctx, r, 8, [](RankContext&) {});
      }
    });
    det.start();
    rt.run_until_quiescent();
    benchmark::DoNotOptimize(det.terminated());
  }
}
BENCHMARK(BM_TerminationWaves)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

class Blob final : public Migratable {
public:
  explicit Blob(std::size_t size) : size_{size} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return size_; }

private:
  std::size_t size_;
};

void BM_MigrationThroughput(benchmark::State& state) {
  auto const batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt{config(16, 1)};
    ObjectStore store{16};
    std::vector<Migration> migrations;
    for (std::size_t i = 0; i < batch; ++i) {
      auto const id = static_cast<TaskId>(i);
      store.create(0, id, std::make_unique<Blob>(1024));
      migrations.push_back(
          Migration{id, 0, static_cast<RankId>(1 + i % 15), 1.0});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.migrate(rt, migrations));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MigrationThroughput)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

} // namespace
