# Empty dependencies file for tlb_runtime.
# This may be replaced when dependencies are built.
