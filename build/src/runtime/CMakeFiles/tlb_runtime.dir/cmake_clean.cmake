file(REMOVE_RECURSE
  "CMakeFiles/tlb_runtime.dir/object_store.cpp.o"
  "CMakeFiles/tlb_runtime.dir/object_store.cpp.o.d"
  "CMakeFiles/tlb_runtime.dir/phase.cpp.o"
  "CMakeFiles/tlb_runtime.dir/phase.cpp.o.d"
  "CMakeFiles/tlb_runtime.dir/runtime.cpp.o"
  "CMakeFiles/tlb_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/tlb_runtime.dir/termination.cpp.o"
  "CMakeFiles/tlb_runtime.dir/termination.cpp.o.d"
  "libtlb_runtime.a"
  "libtlb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
