file(REMOVE_RECURSE
  "libtlb_runtime.a"
)
