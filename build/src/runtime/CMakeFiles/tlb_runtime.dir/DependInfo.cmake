
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/object_store.cpp" "src/runtime/CMakeFiles/tlb_runtime.dir/object_store.cpp.o" "gcc" "src/runtime/CMakeFiles/tlb_runtime.dir/object_store.cpp.o.d"
  "/root/repo/src/runtime/phase.cpp" "src/runtime/CMakeFiles/tlb_runtime.dir/phase.cpp.o" "gcc" "src/runtime/CMakeFiles/tlb_runtime.dir/phase.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/tlb_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/tlb_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/termination.cpp" "src/runtime/CMakeFiles/tlb_runtime.dir/termination.cpp.o" "gcc" "src/runtime/CMakeFiles/tlb_runtime.dir/termination.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tlb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
