# Empty dependencies file for tlb_support.
# This may be replaced when dependencies are built.
