file(REMOVE_RECURSE
  "CMakeFiles/tlb_support.dir/config.cpp.o"
  "CMakeFiles/tlb_support.dir/config.cpp.o.d"
  "CMakeFiles/tlb_support.dir/logging.cpp.o"
  "CMakeFiles/tlb_support.dir/logging.cpp.o.d"
  "CMakeFiles/tlb_support.dir/rng.cpp.o"
  "CMakeFiles/tlb_support.dir/rng.cpp.o.d"
  "CMakeFiles/tlb_support.dir/stats.cpp.o"
  "CMakeFiles/tlb_support.dir/stats.cpp.o.d"
  "CMakeFiles/tlb_support.dir/table.cpp.o"
  "CMakeFiles/tlb_support.dir/table.cpp.o.d"
  "libtlb_support.a"
  "libtlb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
