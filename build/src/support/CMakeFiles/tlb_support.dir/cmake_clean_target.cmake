file(REMOVE_RECURSE
  "libtlb_support.a"
)
