
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/cmf.cpp" "src/lb/CMakeFiles/tlb_lb.dir/cmf.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/cmf.cpp.o.d"
  "/root/repo/src/lb/knowledge.cpp" "src/lb/CMakeFiles/tlb_lb.dir/knowledge.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/knowledge.cpp.o.d"
  "/root/repo/src/lb/lb_types.cpp" "src/lb/CMakeFiles/tlb_lb.dir/lb_types.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/lb_types.cpp.o.d"
  "/root/repo/src/lb/order.cpp" "src/lb/CMakeFiles/tlb_lb.dir/order.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/order.cpp.o.d"
  "/root/repo/src/lb/strategy/baselines.cpp" "src/lb/CMakeFiles/tlb_lb.dir/strategy/baselines.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/strategy/baselines.cpp.o.d"
  "/root/repo/src/lb/strategy/diffusion.cpp" "src/lb/CMakeFiles/tlb_lb.dir/strategy/diffusion.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/strategy/diffusion.cpp.o.d"
  "/root/repo/src/lb/strategy/gossip_strategy.cpp" "src/lb/CMakeFiles/tlb_lb.dir/strategy/gossip_strategy.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/strategy/gossip_strategy.cpp.o.d"
  "/root/repo/src/lb/strategy/greedy.cpp" "src/lb/CMakeFiles/tlb_lb.dir/strategy/greedy.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/strategy/greedy.cpp.o.d"
  "/root/repo/src/lb/strategy/hier.cpp" "src/lb/CMakeFiles/tlb_lb.dir/strategy/hier.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/strategy/hier.cpp.o.d"
  "/root/repo/src/lb/strategy/lb_manager.cpp" "src/lb/CMakeFiles/tlb_lb.dir/strategy/lb_manager.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/strategy/lb_manager.cpp.o.d"
  "/root/repo/src/lb/strategy/stealing.cpp" "src/lb/CMakeFiles/tlb_lb.dir/strategy/stealing.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/strategy/stealing.cpp.o.d"
  "/root/repo/src/lb/strategy/strategy.cpp" "src/lb/CMakeFiles/tlb_lb.dir/strategy/strategy.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/strategy/strategy.cpp.o.d"
  "/root/repo/src/lb/transfer.cpp" "src/lb/CMakeFiles/tlb_lb.dir/transfer.cpp.o" "gcc" "src/lb/CMakeFiles/tlb_lb.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tlb_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
