file(REMOVE_RECURSE
  "libtlb_lb.a"
)
