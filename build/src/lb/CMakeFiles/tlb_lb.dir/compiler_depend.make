# Empty compiler generated dependencies file for tlb_lb.
# This may be replaced when dependencies are built.
