file(REMOVE_RECURSE
  "CMakeFiles/tlb_lb.dir/cmf.cpp.o"
  "CMakeFiles/tlb_lb.dir/cmf.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/knowledge.cpp.o"
  "CMakeFiles/tlb_lb.dir/knowledge.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/lb_types.cpp.o"
  "CMakeFiles/tlb_lb.dir/lb_types.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/order.cpp.o"
  "CMakeFiles/tlb_lb.dir/order.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/strategy/baselines.cpp.o"
  "CMakeFiles/tlb_lb.dir/strategy/baselines.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/strategy/diffusion.cpp.o"
  "CMakeFiles/tlb_lb.dir/strategy/diffusion.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/strategy/gossip_strategy.cpp.o"
  "CMakeFiles/tlb_lb.dir/strategy/gossip_strategy.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/strategy/greedy.cpp.o"
  "CMakeFiles/tlb_lb.dir/strategy/greedy.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/strategy/hier.cpp.o"
  "CMakeFiles/tlb_lb.dir/strategy/hier.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/strategy/lb_manager.cpp.o"
  "CMakeFiles/tlb_lb.dir/strategy/lb_manager.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/strategy/stealing.cpp.o"
  "CMakeFiles/tlb_lb.dir/strategy/stealing.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/strategy/strategy.cpp.o"
  "CMakeFiles/tlb_lb.dir/strategy/strategy.cpp.o.d"
  "CMakeFiles/tlb_lb.dir/transfer.cpp.o"
  "CMakeFiles/tlb_lb.dir/transfer.cpp.o.d"
  "libtlb_lb.a"
  "libtlb_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
