# Empty compiler generated dependencies file for tlb_pic.
# This may be replaced when dependencies are built.
