file(REMOVE_RECURSE
  "CMakeFiles/tlb_pic.dir/app.cpp.o"
  "CMakeFiles/tlb_pic.dir/app.cpp.o.d"
  "CMakeFiles/tlb_pic.dir/bdot.cpp.o"
  "CMakeFiles/tlb_pic.dir/bdot.cpp.o.d"
  "CMakeFiles/tlb_pic.dir/field.cpp.o"
  "CMakeFiles/tlb_pic.dir/field.cpp.o.d"
  "CMakeFiles/tlb_pic.dir/mesh.cpp.o"
  "CMakeFiles/tlb_pic.dir/mesh.cpp.o.d"
  "CMakeFiles/tlb_pic.dir/particles.cpp.o"
  "CMakeFiles/tlb_pic.dir/particles.cpp.o.d"
  "CMakeFiles/tlb_pic.dir/trace.cpp.o"
  "CMakeFiles/tlb_pic.dir/trace.cpp.o.d"
  "libtlb_pic.a"
  "libtlb_pic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_pic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
