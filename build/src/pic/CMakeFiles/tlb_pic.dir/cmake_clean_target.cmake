file(REMOVE_RECURSE
  "libtlb_pic.a"
)
