
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pic/app.cpp" "src/pic/CMakeFiles/tlb_pic.dir/app.cpp.o" "gcc" "src/pic/CMakeFiles/tlb_pic.dir/app.cpp.o.d"
  "/root/repo/src/pic/bdot.cpp" "src/pic/CMakeFiles/tlb_pic.dir/bdot.cpp.o" "gcc" "src/pic/CMakeFiles/tlb_pic.dir/bdot.cpp.o.d"
  "/root/repo/src/pic/field.cpp" "src/pic/CMakeFiles/tlb_pic.dir/field.cpp.o" "gcc" "src/pic/CMakeFiles/tlb_pic.dir/field.cpp.o.d"
  "/root/repo/src/pic/mesh.cpp" "src/pic/CMakeFiles/tlb_pic.dir/mesh.cpp.o" "gcc" "src/pic/CMakeFiles/tlb_pic.dir/mesh.cpp.o.d"
  "/root/repo/src/pic/particles.cpp" "src/pic/CMakeFiles/tlb_pic.dir/particles.cpp.o" "gcc" "src/pic/CMakeFiles/tlb_pic.dir/particles.cpp.o.d"
  "/root/repo/src/pic/trace.cpp" "src/pic/CMakeFiles/tlb_pic.dir/trace.cpp.o" "gcc" "src/pic/CMakeFiles/tlb_pic.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/tlb_lb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
