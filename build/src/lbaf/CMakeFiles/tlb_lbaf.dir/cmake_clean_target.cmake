file(REMOVE_RECURSE
  "libtlb_lbaf.a"
)
