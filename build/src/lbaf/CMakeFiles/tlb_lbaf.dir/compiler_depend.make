# Empty compiler generated dependencies file for tlb_lbaf.
# This may be replaced when dependencies are built.
