
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lbaf/assignment.cpp" "src/lbaf/CMakeFiles/tlb_lbaf.dir/assignment.cpp.o" "gcc" "src/lbaf/CMakeFiles/tlb_lbaf.dir/assignment.cpp.o.d"
  "/root/repo/src/lbaf/experiment.cpp" "src/lbaf/CMakeFiles/tlb_lbaf.dir/experiment.cpp.o" "gcc" "src/lbaf/CMakeFiles/tlb_lbaf.dir/experiment.cpp.o.d"
  "/root/repo/src/lbaf/gossip_sim.cpp" "src/lbaf/CMakeFiles/tlb_lbaf.dir/gossip_sim.cpp.o" "gcc" "src/lbaf/CMakeFiles/tlb_lbaf.dir/gossip_sim.cpp.o.d"
  "/root/repo/src/lbaf/greedy_ref.cpp" "src/lbaf/CMakeFiles/tlb_lbaf.dir/greedy_ref.cpp.o" "gcc" "src/lbaf/CMakeFiles/tlb_lbaf.dir/greedy_ref.cpp.o.d"
  "/root/repo/src/lbaf/workload.cpp" "src/lbaf/CMakeFiles/tlb_lbaf.dir/workload.cpp.o" "gcc" "src/lbaf/CMakeFiles/tlb_lbaf.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/tlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tlb_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
