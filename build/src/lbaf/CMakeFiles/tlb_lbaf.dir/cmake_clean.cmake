file(REMOVE_RECURSE
  "CMakeFiles/tlb_lbaf.dir/assignment.cpp.o"
  "CMakeFiles/tlb_lbaf.dir/assignment.cpp.o.d"
  "CMakeFiles/tlb_lbaf.dir/experiment.cpp.o"
  "CMakeFiles/tlb_lbaf.dir/experiment.cpp.o.d"
  "CMakeFiles/tlb_lbaf.dir/gossip_sim.cpp.o"
  "CMakeFiles/tlb_lbaf.dir/gossip_sim.cpp.o.d"
  "CMakeFiles/tlb_lbaf.dir/greedy_ref.cpp.o"
  "CMakeFiles/tlb_lbaf.dir/greedy_ref.cpp.o.d"
  "CMakeFiles/tlb_lbaf.dir/workload.cpp.o"
  "CMakeFiles/tlb_lbaf.dir/workload.cpp.o.d"
  "libtlb_lbaf.a"
  "libtlb_lbaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_lbaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
