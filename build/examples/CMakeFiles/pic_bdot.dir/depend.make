# Empty dependencies file for pic_bdot.
# This may be replaced when dependencies are built.
