file(REMOVE_RECURSE
  "CMakeFiles/pic_bdot.dir/pic_bdot.cpp.o"
  "CMakeFiles/pic_bdot.dir/pic_bdot.cpp.o.d"
  "pic_bdot"
  "pic_bdot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pic_bdot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
