# Empty dependencies file for strategy_compare.
# This may be replaced when dependencies are built.
