file(REMOVE_RECURSE
  "CMakeFiles/strategy_compare.dir/strategy_compare.cpp.o"
  "CMakeFiles/strategy_compare.dir/strategy_compare.cpp.o.d"
  "strategy_compare"
  "strategy_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
