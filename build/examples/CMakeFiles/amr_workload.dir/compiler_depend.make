# Empty compiler generated dependencies file for amr_workload.
# This may be replaced when dependencies are built.
