file(REMOVE_RECURSE
  "CMakeFiles/amr_workload.dir/amr_workload.cpp.o"
  "CMakeFiles/amr_workload.dir/amr_workload.cpp.o.d"
  "amr_workload"
  "amr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
