# Empty compiler generated dependencies file for test_lbaf.
# This may be replaced when dependencies are built.
