
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lbaf/assignment_test.cpp" "tests/CMakeFiles/test_lbaf.dir/lbaf/assignment_test.cpp.o" "gcc" "tests/CMakeFiles/test_lbaf.dir/lbaf/assignment_test.cpp.o.d"
  "/root/repo/tests/lbaf/experiment_test.cpp" "tests/CMakeFiles/test_lbaf.dir/lbaf/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/test_lbaf.dir/lbaf/experiment_test.cpp.o.d"
  "/root/repo/tests/lbaf/gossip_sim_test.cpp" "tests/CMakeFiles/test_lbaf.dir/lbaf/gossip_sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_lbaf.dir/lbaf/gossip_sim_test.cpp.o.d"
  "/root/repo/tests/lbaf/greedy_ref_test.cpp" "tests/CMakeFiles/test_lbaf.dir/lbaf/greedy_ref_test.cpp.o" "gcc" "tests/CMakeFiles/test_lbaf.dir/lbaf/greedy_ref_test.cpp.o.d"
  "/root/repo/tests/lbaf/knowledge_cap_experiment_test.cpp" "tests/CMakeFiles/test_lbaf.dir/lbaf/knowledge_cap_experiment_test.cpp.o" "gcc" "tests/CMakeFiles/test_lbaf.dir/lbaf/knowledge_cap_experiment_test.cpp.o.d"
  "/root/repo/tests/lbaf/table_regression_test.cpp" "tests/CMakeFiles/test_lbaf.dir/lbaf/table_regression_test.cpp.o" "gcc" "tests/CMakeFiles/test_lbaf.dir/lbaf/table_regression_test.cpp.o.d"
  "/root/repo/tests/lbaf/workload_test.cpp" "tests/CMakeFiles/test_lbaf.dir/lbaf/workload_test.cpp.o" "gcc" "tests/CMakeFiles/test_lbaf.dir/lbaf/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/tlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/lbaf/CMakeFiles/tlb_lbaf.dir/DependInfo.cmake"
  "/root/repo/build/src/pic/CMakeFiles/tlb_pic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
