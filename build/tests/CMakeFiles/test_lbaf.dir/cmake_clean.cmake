file(REMOVE_RECURSE
  "CMakeFiles/test_lbaf.dir/lbaf/assignment_test.cpp.o"
  "CMakeFiles/test_lbaf.dir/lbaf/assignment_test.cpp.o.d"
  "CMakeFiles/test_lbaf.dir/lbaf/experiment_test.cpp.o"
  "CMakeFiles/test_lbaf.dir/lbaf/experiment_test.cpp.o.d"
  "CMakeFiles/test_lbaf.dir/lbaf/gossip_sim_test.cpp.o"
  "CMakeFiles/test_lbaf.dir/lbaf/gossip_sim_test.cpp.o.d"
  "CMakeFiles/test_lbaf.dir/lbaf/greedy_ref_test.cpp.o"
  "CMakeFiles/test_lbaf.dir/lbaf/greedy_ref_test.cpp.o.d"
  "CMakeFiles/test_lbaf.dir/lbaf/knowledge_cap_experiment_test.cpp.o"
  "CMakeFiles/test_lbaf.dir/lbaf/knowledge_cap_experiment_test.cpp.o.d"
  "CMakeFiles/test_lbaf.dir/lbaf/table_regression_test.cpp.o"
  "CMakeFiles/test_lbaf.dir/lbaf/table_regression_test.cpp.o.d"
  "CMakeFiles/test_lbaf.dir/lbaf/workload_test.cpp.o"
  "CMakeFiles/test_lbaf.dir/lbaf/workload_test.cpp.o.d"
  "test_lbaf"
  "test_lbaf.pdb"
  "test_lbaf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lbaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
