file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/collectives_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/collectives_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/mailbox_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/mailbox_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/object_store_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/object_store_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/phase_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/phase_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/random_delivery_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/random_delivery_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/runtime_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/runtime_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/scheduling_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/scheduling_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/serialize_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/serialize_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/termination_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/termination_test.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
