
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/collectives_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/collectives_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/collectives_test.cpp.o.d"
  "/root/repo/tests/runtime/mailbox_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/mailbox_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/mailbox_test.cpp.o.d"
  "/root/repo/tests/runtime/object_store_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/object_store_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/object_store_test.cpp.o.d"
  "/root/repo/tests/runtime/phase_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/phase_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/phase_test.cpp.o.d"
  "/root/repo/tests/runtime/random_delivery_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/random_delivery_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/random_delivery_test.cpp.o.d"
  "/root/repo/tests/runtime/runtime_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/runtime_test.cpp.o.d"
  "/root/repo/tests/runtime/scheduling_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/scheduling_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/scheduling_test.cpp.o.d"
  "/root/repo/tests/runtime/serialize_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/serialize_test.cpp.o.d"
  "/root/repo/tests/runtime/termination_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/termination_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/termination_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/tlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/lbaf/CMakeFiles/tlb_lbaf.dir/DependInfo.cmake"
  "/root/repo/build/src/pic/CMakeFiles/tlb_pic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
