file(REMOVE_RECURSE
  "CMakeFiles/test_strategies.dir/strategy/baselines_test.cpp.o"
  "CMakeFiles/test_strategies.dir/strategy/baselines_test.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategy/diffusion_test.cpp.o"
  "CMakeFiles/test_strategies.dir/strategy/diffusion_test.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategy/extensions_test.cpp.o"
  "CMakeFiles/test_strategies.dir/strategy/extensions_test.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategy/gossip_strategy_test.cpp.o"
  "CMakeFiles/test_strategies.dir/strategy/gossip_strategy_test.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategy/greedy_test.cpp.o"
  "CMakeFiles/test_strategies.dir/strategy/greedy_test.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategy/hier_test.cpp.o"
  "CMakeFiles/test_strategies.dir/strategy/hier_test.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategy/lb_manager_test.cpp.o"
  "CMakeFiles/test_strategies.dir/strategy/lb_manager_test.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategy/stealing_test.cpp.o"
  "CMakeFiles/test_strategies.dir/strategy/stealing_test.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategy/strategy_sweep_test.cpp.o"
  "CMakeFiles/test_strategies.dir/strategy/strategy_sweep_test.cpp.o.d"
  "test_strategies"
  "test_strategies.pdb"
  "test_strategies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
