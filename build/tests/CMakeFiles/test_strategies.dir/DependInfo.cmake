
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/strategy/baselines_test.cpp" "tests/CMakeFiles/test_strategies.dir/strategy/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategy/baselines_test.cpp.o.d"
  "/root/repo/tests/strategy/diffusion_test.cpp" "tests/CMakeFiles/test_strategies.dir/strategy/diffusion_test.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategy/diffusion_test.cpp.o.d"
  "/root/repo/tests/strategy/extensions_test.cpp" "tests/CMakeFiles/test_strategies.dir/strategy/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategy/extensions_test.cpp.o.d"
  "/root/repo/tests/strategy/gossip_strategy_test.cpp" "tests/CMakeFiles/test_strategies.dir/strategy/gossip_strategy_test.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategy/gossip_strategy_test.cpp.o.d"
  "/root/repo/tests/strategy/greedy_test.cpp" "tests/CMakeFiles/test_strategies.dir/strategy/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategy/greedy_test.cpp.o.d"
  "/root/repo/tests/strategy/hier_test.cpp" "tests/CMakeFiles/test_strategies.dir/strategy/hier_test.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategy/hier_test.cpp.o.d"
  "/root/repo/tests/strategy/lb_manager_test.cpp" "tests/CMakeFiles/test_strategies.dir/strategy/lb_manager_test.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategy/lb_manager_test.cpp.o.d"
  "/root/repo/tests/strategy/stealing_test.cpp" "tests/CMakeFiles/test_strategies.dir/strategy/stealing_test.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategy/stealing_test.cpp.o.d"
  "/root/repo/tests/strategy/strategy_sweep_test.cpp" "tests/CMakeFiles/test_strategies.dir/strategy/strategy_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategy/strategy_sweep_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/tlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/lbaf/CMakeFiles/tlb_lbaf.dir/DependInfo.cmake"
  "/root/repo/build/src/pic/CMakeFiles/tlb_pic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
