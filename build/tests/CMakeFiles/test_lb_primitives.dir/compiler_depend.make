# Empty compiler generated dependencies file for test_lb_primitives.
# This may be replaced when dependencies are built.
