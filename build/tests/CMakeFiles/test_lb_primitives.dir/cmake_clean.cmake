file(REMOVE_RECURSE
  "CMakeFiles/test_lb_primitives.dir/lb/cmf_test.cpp.o"
  "CMakeFiles/test_lb_primitives.dir/lb/cmf_test.cpp.o.d"
  "CMakeFiles/test_lb_primitives.dir/lb/criterion_test.cpp.o"
  "CMakeFiles/test_lb_primitives.dir/lb/criterion_test.cpp.o.d"
  "CMakeFiles/test_lb_primitives.dir/lb/knowledge_cap_test.cpp.o"
  "CMakeFiles/test_lb_primitives.dir/lb/knowledge_cap_test.cpp.o.d"
  "CMakeFiles/test_lb_primitives.dir/lb/knowledge_test.cpp.o"
  "CMakeFiles/test_lb_primitives.dir/lb/knowledge_test.cpp.o.d"
  "CMakeFiles/test_lb_primitives.dir/lb/lb_types_test.cpp.o"
  "CMakeFiles/test_lb_primitives.dir/lb/lb_types_test.cpp.o.d"
  "CMakeFiles/test_lb_primitives.dir/lb/order_test.cpp.o"
  "CMakeFiles/test_lb_primitives.dir/lb/order_test.cpp.o.d"
  "CMakeFiles/test_lb_primitives.dir/lb/transfer_grid_test.cpp.o"
  "CMakeFiles/test_lb_primitives.dir/lb/transfer_grid_test.cpp.o.d"
  "CMakeFiles/test_lb_primitives.dir/lb/transfer_test.cpp.o"
  "CMakeFiles/test_lb_primitives.dir/lb/transfer_test.cpp.o.d"
  "test_lb_primitives"
  "test_lb_primitives.pdb"
  "test_lb_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
