file(REMOVE_RECURSE
  "CMakeFiles/test_pic.dir/pic/app_test.cpp.o"
  "CMakeFiles/test_pic.dir/pic/app_test.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/bdot_test.cpp.o"
  "CMakeFiles/test_pic.dir/pic/bdot_test.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/field_test.cpp.o"
  "CMakeFiles/test_pic.dir/pic/field_test.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/locality_test.cpp.o"
  "CMakeFiles/test_pic.dir/pic/locality_test.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/mesh_test.cpp.o"
  "CMakeFiles/test_pic.dir/pic/mesh_test.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/particles_test.cpp.o"
  "CMakeFiles/test_pic.dir/pic/particles_test.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/persistence_test.cpp.o"
  "CMakeFiles/test_pic.dir/pic/persistence_test.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/trace_test.cpp.o"
  "CMakeFiles/test_pic.dir/pic/trace_test.cpp.o.d"
  "test_pic"
  "test_pic.pdb"
  "test_pic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
