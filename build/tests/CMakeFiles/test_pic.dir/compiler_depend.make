# Empty compiler generated dependencies file for test_pic.
# This may be replaced when dependencies are built.
