
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pic/app_test.cpp" "tests/CMakeFiles/test_pic.dir/pic/app_test.cpp.o" "gcc" "tests/CMakeFiles/test_pic.dir/pic/app_test.cpp.o.d"
  "/root/repo/tests/pic/bdot_test.cpp" "tests/CMakeFiles/test_pic.dir/pic/bdot_test.cpp.o" "gcc" "tests/CMakeFiles/test_pic.dir/pic/bdot_test.cpp.o.d"
  "/root/repo/tests/pic/field_test.cpp" "tests/CMakeFiles/test_pic.dir/pic/field_test.cpp.o" "gcc" "tests/CMakeFiles/test_pic.dir/pic/field_test.cpp.o.d"
  "/root/repo/tests/pic/locality_test.cpp" "tests/CMakeFiles/test_pic.dir/pic/locality_test.cpp.o" "gcc" "tests/CMakeFiles/test_pic.dir/pic/locality_test.cpp.o.d"
  "/root/repo/tests/pic/mesh_test.cpp" "tests/CMakeFiles/test_pic.dir/pic/mesh_test.cpp.o" "gcc" "tests/CMakeFiles/test_pic.dir/pic/mesh_test.cpp.o.d"
  "/root/repo/tests/pic/particles_test.cpp" "tests/CMakeFiles/test_pic.dir/pic/particles_test.cpp.o" "gcc" "tests/CMakeFiles/test_pic.dir/pic/particles_test.cpp.o.d"
  "/root/repo/tests/pic/persistence_test.cpp" "tests/CMakeFiles/test_pic.dir/pic/persistence_test.cpp.o" "gcc" "tests/CMakeFiles/test_pic.dir/pic/persistence_test.cpp.o.d"
  "/root/repo/tests/pic/trace_test.cpp" "tests/CMakeFiles/test_pic.dir/pic/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_pic.dir/pic/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/tlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/lbaf/CMakeFiles/tlb_lbaf.dir/DependInfo.cmake"
  "/root/repo/build/src/pic/CMakeFiles/tlb_pic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
