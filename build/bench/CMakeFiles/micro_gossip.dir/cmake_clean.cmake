file(REMOVE_RECURSE
  "CMakeFiles/micro_gossip.dir/micro_gossip.cpp.o"
  "CMakeFiles/micro_gossip.dir/micro_gossip.cpp.o.d"
  "micro_gossip"
  "micro_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
