# Empty compiler generated dependencies file for micro_gossip.
# This may be replaced when dependencies are built.
