# Empty dependencies file for fig4d_orderings.
# This may be replaced when dependencies are built.
