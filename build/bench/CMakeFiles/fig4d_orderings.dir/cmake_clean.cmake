file(REMOVE_RECURSE
  "CMakeFiles/fig4d_orderings.dir/fig4d_orderings.cpp.o"
  "CMakeFiles/fig4d_orderings.dir/fig4d_orderings.cpp.o.d"
  "fig4d_orderings"
  "fig4d_orderings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4d_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
