file(REMOVE_RECURSE
  "CMakeFiles/table_original_criterion.dir/table_original_criterion.cpp.o"
  "CMakeFiles/table_original_criterion.dir/table_original_criterion.cpp.o.d"
  "table_original_criterion"
  "table_original_criterion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_original_criterion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
