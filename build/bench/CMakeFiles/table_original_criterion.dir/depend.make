# Empty dependencies file for table_original_criterion.
# This may be replaced when dependencies are built.
