file(REMOVE_RECURSE
  "CMakeFiles/fig4a_step_time.dir/fig4a_step_time.cpp.o"
  "CMakeFiles/fig4a_step_time.dir/fig4a_step_time.cpp.o.d"
  "fig4a_step_time"
  "fig4a_step_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_step_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
