# Empty compiler generated dependencies file for fig4a_step_time.
# This may be replaced when dependencies are built.
