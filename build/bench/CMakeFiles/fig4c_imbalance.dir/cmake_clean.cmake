file(REMOVE_RECURSE
  "CMakeFiles/fig4c_imbalance.dir/fig4c_imbalance.cpp.o"
  "CMakeFiles/fig4c_imbalance.dir/fig4c_imbalance.cpp.o.d"
  "fig4c_imbalance"
  "fig4c_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
