# Empty dependencies file for fig4c_imbalance.
# This may be replaced when dependencies are built.
