# Empty compiler generated dependencies file for micro_transfer.
# This may be replaced when dependencies are built.
