file(REMOVE_RECURSE
  "CMakeFiles/table_nacks.dir/table_nacks.cpp.o"
  "CMakeFiles/table_nacks.dir/table_nacks.cpp.o.d"
  "table_nacks"
  "table_nacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_nacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
