# Empty dependencies file for table_nacks.
# This may be replaced when dependencies are built.
