file(REMOVE_RECURSE
  "CMakeFiles/micro_cmf.dir/micro_cmf.cpp.o"
  "CMakeFiles/micro_cmf.dir/micro_cmf.cpp.o.d"
  "micro_cmf"
  "micro_cmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
