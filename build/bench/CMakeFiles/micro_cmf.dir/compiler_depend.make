# Empty compiler generated dependencies file for micro_cmf.
# This may be replaced when dependencies are built.
