# Empty dependencies file for table_trials_sweep.
# This may be replaced when dependencies are built.
