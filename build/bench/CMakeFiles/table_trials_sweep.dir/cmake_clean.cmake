file(REMOVE_RECURSE
  "CMakeFiles/table_trials_sweep.dir/table_trials_sweep.cpp.o"
  "CMakeFiles/table_trials_sweep.dir/table_trials_sweep.cpp.o.d"
  "table_trials_sweep"
  "table_trials_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_trials_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
