file(REMOVE_RECURSE
  "CMakeFiles/fig4b_rank_loads.dir/fig4b_rank_loads.cpp.o"
  "CMakeFiles/fig4b_rank_loads.dir/fig4b_rank_loads.cpp.o.d"
  "fig4b_rank_loads"
  "fig4b_rank_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_rank_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
