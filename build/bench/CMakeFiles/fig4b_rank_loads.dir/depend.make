# Empty dependencies file for fig4b_rank_loads.
# This may be replaced when dependencies are built.
