# Empty compiler generated dependencies file for table_relaxed_criterion.
# This may be replaced when dependencies are built.
