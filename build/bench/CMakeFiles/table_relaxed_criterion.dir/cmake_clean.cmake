file(REMOVE_RECURSE
  "CMakeFiles/table_relaxed_criterion.dir/table_relaxed_criterion.cpp.o"
  "CMakeFiles/table_relaxed_criterion.dir/table_relaxed_criterion.cpp.o.d"
  "table_relaxed_criterion"
  "table_relaxed_criterion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_relaxed_criterion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
