file(REMOVE_RECURSE
  "CMakeFiles/fig2_overall.dir/fig2_overall.cpp.o"
  "CMakeFiles/fig2_overall.dir/fig2_overall.cpp.o.d"
  "fig2_overall"
  "fig2_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
