# Empty dependencies file for table_criterion_compare.
# This may be replaced when dependencies are built.
