file(REMOVE_RECURSE
  "CMakeFiles/table_criterion_compare.dir/table_criterion_compare.cpp.o"
  "CMakeFiles/table_criterion_compare.dir/table_criterion_compare.cpp.o.d"
  "table_criterion_compare"
  "table_criterion_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_criterion_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
