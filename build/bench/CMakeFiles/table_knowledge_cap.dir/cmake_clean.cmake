file(REMOVE_RECURSE
  "CMakeFiles/table_knowledge_cap.dir/table_knowledge_cap.cpp.o"
  "CMakeFiles/table_knowledge_cap.dir/table_knowledge_cap.cpp.o.d"
  "table_knowledge_cap"
  "table_knowledge_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_knowledge_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
