# Empty compiler generated dependencies file for table_knowledge_cap.
# This may be replaced when dependencies are built.
