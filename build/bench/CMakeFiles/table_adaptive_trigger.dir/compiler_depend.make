# Empty compiler generated dependencies file for table_adaptive_trigger.
# This may be replaced when dependencies are built.
