file(REMOVE_RECURSE
  "CMakeFiles/table_adaptive_trigger.dir/table_adaptive_trigger.cpp.o"
  "CMakeFiles/table_adaptive_trigger.dir/table_adaptive_trigger.cpp.o.d"
  "table_adaptive_trigger"
  "table_adaptive_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_adaptive_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
